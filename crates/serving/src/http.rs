//! A from-scratch HTTP/1.1 server on `std::net::TcpListener`.
//!
//! Deliberately minimal but correct for the API's needs: request-line +
//! header parsing with size limits, Content-Length bodies, one response
//! per connection (`Connection: close`), a bounded acceptor thread, and
//! graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum request head size (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Maximum request body size.
const MAX_BODY: usize = 1024 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// An HTTP status code (the subset the API uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// 200
    Ok,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 405
    MethodNotAllowed,
    /// 413
    PayloadTooLarge,
    /// 429
    TooManyRequests,
    /// 500
    InternalServerError,
    /// 503
    ServiceUnavailable,
}

impl StatusCode {
    /// Numeric code.
    pub fn code(&self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::BadRequest => 400,
            StatusCode::NotFound => 404,
            StatusCode::MethodNotAllowed => 405,
            StatusCode::PayloadTooLarge => 413,
            StatusCode::TooManyRequests => 429,
            StatusCode::InternalServerError => 500,
            StatusCode::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(&self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::BadRequest => "Bad Request",
            StatusCode::NotFound => "Not Found",
            StatusCode::MethodNotAllowed => "Method Not Allowed",
            StatusCode::PayloadTooLarge => "Payload Too Large",
            StatusCode::TooManyRequests => "Too Many Requests",
            StatusCode::InternalServerError => "Internal Server Error",
            StatusCode::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, upper-case ("GET", "POST").
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw query string (without `?`), possibly empty.
    pub query: String,
    /// Headers, keys lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body bytes.
    pub body: Vec<u8>,
    /// The request's trace, attached by the connection loop after a
    /// successful parse. Handlers clone it into whatever queue job they
    /// enqueue; the connection loop seals it at response write.
    pub trace: Option<obs::reqtrace::TraceHandle>,
}

impl Request {
    /// Header lookup (case-insensitive key).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Content-Type header value.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// JSON response.
    pub fn json(status: StatusCode, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json".into(),
            body: body.into().into_bytes(),
        }
    }

    /// HTML response.
    pub fn html(body: impl Into<String>) -> Response {
        Response {
            status: StatusCode::Ok,
            content_type: "text/html; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    /// Plain-text response.
    pub fn text(status: StatusCode, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".into(),
            body: body.into().into_bytes(),
        }
    }

    /// Serialize to wire format. Responses always carry permissive CORS
    /// headers: the paper's deployment decouples the frontend from the
    /// backend ("frontend is completely decoupled from the backend using
    /// microservices architecture"), so the API must answer cross-origin
    /// browsers.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_trace(None)
    }

    /// Serialize to wire format, adding an `X-Trace-Id` header when the
    /// connection carries a request trace (the id is what `/debug/requests/<id>`
    /// looks up). `None` keeps the exact pre-tracing wire shape.
    pub fn to_bytes_with_trace(&self, trace_id: Option<u64>) -> Vec<u8> {
        let trace_header = match trace_id {
            Some(id) => format!("X-Trace-Id: {id}\r\n"),
            None => String::new(),
        };
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\
             {trace_header}Access-Control-Allow-Origin: *\r\n\
             Access-Control-Allow-Methods: GET, POST, OPTIONS\r\n\
             Access-Control-Allow-Headers: Content-Type\r\n\r\n",
            self.status.code(),
            self.status.reason(),
            self.content_type,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// An empty 200 for CORS preflight.
    pub fn preflight() -> Response {
        Response::text(StatusCode::Ok, "")
    }
}

/// Why a request failed to parse, split by the status code it maps to:
/// size-limit violations answer 413, everything else 400.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Head or declared body exceeds a size limit (→ 413).
    TooLarge(String),
    /// The bytes are not a well-formed HTTP/1.x request (→ 400).
    Malformed(String),
}

impl ParseError {
    fn malformed(msg: impl Into<String>) -> ParseError {
        ParseError::Malformed(msg.into())
    }

    /// The status code this error maps to on the wire.
    pub fn status(&self) -> StatusCode {
        match self {
            ParseError::TooLarge(_) => StatusCode::PayloadTooLarge,
            ParseError::Malformed(_) => StatusCode::BadRequest,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::TooLarge(m) | ParseError::Malformed(m) => write!(f, "{m}"),
        }
    }
}

/// Parse one request from a buffered stream.
pub fn parse_request(reader: &mut impl BufRead) -> Result<Request, ParseError> {
    let mut line = String::new();
    let mut head_bytes = 0usize;
    reader
        .read_line(&mut line)
        .map_err(|e| ParseError::malformed(format!("read error: {e}")))?;
    head_bytes += line.len();
    let line = line.trim_end();
    if line.is_empty() {
        return Err(ParseError::malformed("empty request line"));
    }
    let mut parts = line.split(' ');
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or_else(|| ParseError::malformed("missing http version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::malformed(format!("unsupported version {version}")));
    }
    if method.is_empty() || !method.chars().all(|c| c.is_ascii_alphabetic()) {
        return Err(ParseError::malformed("bad method"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let mut hline = String::new();
        reader
            .read_line(&mut hline)
            .map_err(|e| ParseError::malformed(format!("header read error: {e}")))?;
        head_bytes += hline.len();
        if head_bytes > MAX_HEAD {
            return Err(ParseError::TooLarge("request head too large".into()));
        }
        let hline = hline.trim_end();
        if hline.is_empty() {
            break;
        }
        let (k, v) = hline
            .split_once(':')
            .ok_or_else(|| ParseError::malformed("malformed header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }

    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse()
                .map_err(|_| ParseError::malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge("body too large".into()));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|e| ParseError::malformed(format!("body read error: {e}")))?;
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        trace: None,
    })
}

/// A running HTTP server. Handlers run on the acceptor's handler threads;
/// one response per connection.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `handler` on a background acceptor thread until [`HttpServer::stop`].
    pub fn start<F>(addr: &str, handler: F) -> std::io::Result<HttpServer>
    where
        F: Fn(Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let handler = Arc::new(handler);
        let acceptor = std::thread::Builder::new()
            .name("http-acceptor".into())
            .spawn(move || {
                let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
                while !shutdown2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let h = Arc::clone(&handler);
                            workers.push(std::thread::spawn(move || {
                                handle_connection(stream, &*h);
                            }));
                            workers.retain(|w| !w.is_finished());
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for w in workers {
                    let _ = w.join();
                }
            })?;
        Ok(HttpServer {
            addr: local,
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and join the acceptor.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

fn handle_connection(stream: TcpStream, handler: &(dyn Fn(Request) -> Response + Send + Sync)) {
    let start = obs::Clock::now();
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // A trace begins only once the bytes parse as HTTP: unparseable
    // connections have no request lifecycle to attribute.
    let (response, trace) = match parse_request(&mut reader) {
        Ok(mut req) => {
            let trace = obs::reqtrace::begin();
            req.trace = Some(trace.clone());
            (handler(req), Some(trace))
        }
        Err(e) => (Response::text(e.status(), format!("bad request: {e}")), None),
    };
    record_request(response.status, start);
    let trace_id = trace.as_ref().map(|t| t.id());
    let _ = writer.write_all(&response.to_bytes_with_trace(trace_id));
    let _ = writer.flush();
    if let Some(t) = trace {
        t.record(
            obs::reqtrace::Phase::Respond,
            response.status.code() as u32,
            0,
        );
        obs::reqtrace::complete(&t);
    }
}

/// Per-request telemetry: latency histogram plus a counter per status
/// class. One `static_counter!` per arm so each series keeps a cached
/// handle (the macro binds one handle per call site).
fn record_request(status: StatusCode, start: obs::Stamp) {
    obs::static_histogram!("http_request_ns").observe(start.elapsed_ns());
    match status.code() / 100 {
        2 => obs::static_counter!(r#"http_requests_total{class="2xx"}"#).inc(),
        4 => obs::static_counter!(r#"http_requests_total{class="4xx"}"#).inc(),
        _ => obs::static_counter!(r#"http_requests_total{class="5xx"}"#).inc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Cursor, Read};

    fn parse(s: &str) -> Result<Request, ParseError> {
        parse_request(&mut Cursor::new(s.as_bytes()))
    }

    #[test]
    fn parses_get() {
        let r = parse("GET /api/health?x=1 HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/api/health");
        assert_eq!(r.query, "x=1");
        assert_eq!(r.header("host"), Some("localhost"));
        assert_eq!(r.header("HOST"), Some("localhost"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body() {
        let body = r#"{"a":1}"#;
        let raw = format!(
            "POST /api/generate HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let r = parse(&raw).unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body_str(), body);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("GARBAGE\r\n\r\n").is_err());
        assert!(parse("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nBadHeader\r\n\r\n").is_err());
        assert!(parse("G@T /x HTTP/1.1\r\n\r\n").is_err());
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn size_limit_errors_map_to_413_and_malformed_to_400() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert_eq!(parse(&raw).unwrap_err().status(), StatusCode::PayloadTooLarge);
        let big_head = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(MAX_HEAD));
        assert_eq!(
            parse(&big_head).unwrap_err().status(),
            StatusCode::PayloadTooLarge
        );
        assert_eq!(
            parse("GARBAGE\r\n\r\n").unwrap_err().status(),
            StatusCode::BadRequest
        );
    }

    #[test]
    fn truncated_body_is_error() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(parse(raw).is_err());
    }

    #[test]
    fn response_wire_format() {
        let r = Response::json(StatusCode::Ok, r#"{"ok":true}"#);
        let s = String::from_utf8(r.to_bytes()).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Type: application/json\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.ends_with(r#"{"ok":true}"#));
        assert!(!s.contains("X-Trace-Id"), "untraced response grew a trace header: {s}");
    }

    #[test]
    fn traced_response_carries_trace_id_header() {
        let r = Response::json(StatusCode::Ok, r#"{"ok":true}"#);
        let s = String::from_utf8(r.to_bytes_with_trace(Some(42))).unwrap();
        assert!(s.contains("X-Trace-Id: 42\r\n"), "{s}");
        assert!(s.ends_with(r#"{"ok":true}"#));
    }

    #[test]
    fn connection_attaches_trace_and_completes_it() {
        let server = HttpServer::start("127.0.0.1:0", |req| {
            let trace = req.trace.as_ref().expect("trace attached to parsed request");
            trace.record(obs::reqtrace::Phase::Enqueue, 1, 0);
            Response::text(StatusCode::Ok, "ok")
        })
        .unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"GET /traced HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let id: u64 = buf
            .lines()
            .find_map(|l| l.strip_prefix("X-Trace-Id: "))
            .expect("X-Trace-Id header present")
            .trim()
            .parse()
            .expect("numeric trace id");
        // The completed trace is retrievable and ends with Respond(200).
        let t = obs::reqtrace::find(id).expect("trace retained after completion");
        let phases = t.phases();
        assert_eq!(phases.first().map(|p| p.phase), Some(obs::reqtrace::Phase::Accept));
        assert!(phases.iter().any(|p| p.phase == obs::reqtrace::Phase::Enqueue));
        let last = phases.last().expect("non-empty trace");
        assert_eq!(last.phase, obs::reqtrace::Phase::Respond);
        assert_eq!(last.a, 200);
        server.stop();
    }

    #[test]
    fn server_roundtrip() {
        let server = HttpServer::start("127.0.0.1:0", |req| {
            Response::text(StatusCode::Ok, format!("echo {}", req.path))
        })
        .unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut buf = String::new();
        stream.read_to_string(&mut buf).unwrap();
        assert!(buf.contains("200 OK"));
        assert!(buf.ends_with("echo /ping"));
        server.stop();
    }

    #[test]
    fn server_handles_concurrent_connections() {
        let server = HttpServer::start("127.0.0.1:0", |_req| {
            std::thread::sleep(Duration::from_millis(20));
            Response::text(StatusCode::Ok, "ok")
        })
        .unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut s = TcpStream::connect(addr).unwrap();
                    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
                    let mut buf = String::new();
                    s.read_to_string(&mut buf).unwrap();
                    assert!(buf.contains("200 OK"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }

    #[test]
    fn malformed_request_gets_400_not_hang() {
        let server =
            HttpServer::start("127.0.0.1:0", |_req| Response::text(StatusCode::Ok, "ok")).unwrap();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.write_all(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        assert!(buf.contains("400"), "{buf}");
        server.stop();
    }
}

//! The Ratatouille HTTP API: the backend half of Figs. 4–5.
//!
//! Endpoints:
//! * `GET  /`             — the embedded single-page frontend;
//! * `GET  /api/health`   — liveness + worker count + routes;
//! * `GET  /api/models`   — the serving model's card;
//! * `POST /api/generate` — `{"ingredients": ["flour", …]}` →
//!   `{"title", "ingredients", "instructions", "model", "latency_ms"}`;
//! * `GET  /healthz`      — bare-text liveness probe;
//! * `GET  /metrics`      — the `obs` registry in Prometheus text format;
//! * `GET  /debug/stacks` — folded span stacks (flamegraph input).
//!
//! The API is generic over [`RecipeBackend`] so this crate stays free of
//! model dependencies; the `ratatouille` crate plugs the real models in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::frontend;
use crate::http::{HttpServer, Request, Response, StatusCode};
use crate::json::Json;
use crate::router::Router;
use crate::worker::{PoolError, WorkerPool};

/// Live serving counters, exposed at `GET /api/stats` (the observability
/// the paper's dockerized deployment would get from its orchestrator).
#[derive(Debug, Default)]
pub struct ApiStats {
    /// Total generate requests received.
    pub requests: AtomicU64,
    /// Requests that produced a recipe.
    pub generated: AtomicU64,
    /// Requests rejected for bad input.
    pub bad_requests: AtomicU64,
    /// Requests bounced by queue backpressure (503s).
    pub rejected: AtomicU64,
    /// Sum of model latency in microseconds (mean = sum / generated).
    pub latency_us_sum: AtomicU64,
}

impl ApiStats {
    fn to_json(&self, workers: usize) -> Json {
        let generated = self.generated.load(Ordering::Relaxed);
        let lat_sum = self.latency_us_sum.load(Ordering::Relaxed);
        let mean_ms = if generated > 0 {
            (lat_sum as f64 / generated as f64) / 1000.0
        } else {
            0.0
        };
        Json::object(vec![
            ("workers", Json::Number(workers as f64)),
            ("requests", Json::Number(self.requests.load(Ordering::Relaxed) as f64)),
            ("generated", Json::Number(generated as f64)),
            ("bad_requests", Json::Number(self.bad_requests.load(Ordering::Relaxed) as f64)),
            ("rejected", Json::Number(self.rejected.load(Ordering::Relaxed) as f64)),
            ("mean_latency_ms", Json::Number(mean_ms)),
        ])
    }
}

/// A structured recipe produced by a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRecipe {
    /// Recipe title.
    pub title: String,
    /// Ingredient lines ("2 cups flour").
    pub ingredients: Vec<String>,
    /// Instruction steps.
    pub instructions: Vec<String>,
    /// Whether the generation passed structural validation.
    pub well_formed: bool,
}

/// A recipe-generation backend replica. Each worker thread builds its own
/// via [`RecipeBackendFactory`].
pub trait RecipeBackend {
    /// Generate a recipe from an ingredient list.
    fn generate(&mut self, ingredients: &[String]) -> GeneratedRecipe;

    /// Model card name ("GPT-2 medium").
    fn model_name(&self) -> String;

    /// Generate with a requested weight dtype (one of [`Self::dtypes`]).
    /// The default ignores `dtype`: backends without precision variants
    /// always serve their native weights.
    fn generate_with_dtype(&mut self, ingredients: &[String], dtype: &str) -> GeneratedRecipe {
        let _ = dtype;
        self.generate(ingredients)
    }

    /// Generate with a pinned sampling seed (the request's `"seed"`
    /// field): same seed, same recipe. The default ignores the seed —
    /// backends without seeded decoding stay nondeterministic.
    fn generate_seeded(
        &mut self,
        ingredients: &[String],
        dtype: &str,
        seed: Option<u64>,
    ) -> GeneratedRecipe {
        let _ = seed;
        self.generate_with_dtype(ingredients, dtype)
    }

    /// The weight dtypes this backend can serve; the first entry is the
    /// default when a request names none. The server validates
    /// `?dtype=…` against this set at request time (400 otherwise).
    fn dtypes(&self) -> Vec<String> {
        vec!["f32".to_string()]
    }
}

/// Thread-safe factory producing per-worker backend replicas.
pub type RecipeBackendFactory = Arc<dyn Fn(usize) -> Box<dyn RecipeBackend> + Send + Sync>;

/// The assembled Ratatouille API server.
pub struct ApiServer {
    server: HttpServer,
    model_name: String,
    stats: Arc<ApiStats>,
    /// Present on the continuous-batching stack: kept so the runner
    /// outlives the HTTP handlers and joins on drop.
    batch: Option<Arc<crate::batch::BatchRunner>>,
}

struct GenJob {
    ingredients: Vec<String>,
    dtype: String,
    seed: Option<u64>,
}

struct GenOut {
    recipe: GeneratedRecipe,
    model: String,
    dtype: String,
    latency_ms: f64,
}

impl ApiServer {
    /// Boot the full stack: worker pool + router + HTTP server.
    ///
    /// `addr` like `"127.0.0.1:0"`; `workers` is the replica count
    /// (the paper's "replicate the docker" axis).
    pub fn start(
        addr: &str,
        workers: usize,
        queue_cap: usize,
        factory: RecipeBackendFactory,
    ) -> std::io::Result<ApiServer> {
        // Sniff the model card from a throwaway replica.
        let probe = factory(usize::MAX);
        let model_name = probe.model_name();
        let dtypes = Arc::new(probe.dtypes());
        drop(probe);

        let pool: Arc<WorkerPool<GenJob, GenOut>> = Arc::new(WorkerPool::new(
            workers,
            queue_cap,
            move |wi| {
                let mut backend = factory(wi);
                // Per-model twin of the aggregate latency histogram,
                // resolved once per worker (never in the hot path).
                let labeled_latency = obs::metrics::histogram(&format!(
                    "generate_latency_ns{{model=\"{}\"}}",
                    obs::metrics::label_value(&backend.model_name())
                ));
                move |job: GenJob| {
                    let start = obs::Clock::now();
                    let recipe = backend.generate_seeded(&job.ingredients, &job.dtype, job.seed);
                    let ns = start.elapsed_ns();
                    obs::static_histogram!("generate_latency_ns").observe(ns);
                    labeled_latency.observe(ns);
                    GenOut {
                        recipe,
                        model: backend.model_name(),
                        dtype: job.dtype,
                        latency_ms: ns as f64 / 1e6,
                    }
                }
            },
        )?);

        let model_for_routes = model_name.clone();
        let dtypes_for_routes: Vec<String> = dtypes.to_vec();
        let dtypes_for_gen = Arc::clone(&dtypes);
        let pool_for_gen = Arc::clone(&pool);
        let worker_count = pool.workers();
        let stats = Arc::new(ApiStats::default());
        let stats_for_gen = Arc::clone(&stats);
        let stats_for_route = Arc::clone(&stats);
        let router = Router::new()
            .route("GET", "/", |_req| Response::html(frontend::INDEX_HTML))
            .route("GET", "/api/health", move |_req| {
                let body = Json::object(vec![
                    ("status", Json::string("ok")),
                    ("workers", Json::Number(worker_count as f64)),
                ]);
                Response::json(StatusCode::Ok, body.to_string())
            })
            .route("GET", "/api/models", move |_req| {
                let body = Json::object(vec![
                    ("models", Json::string_array(&[model_for_routes.as_str()])),
                    ("dtypes", Json::string_array(&dtypes_for_routes)),
                ]);
                Response::json(StatusCode::Ok, body.to_string())
            })
            .route("GET", "/api/stats", move |_req| {
                Response::json(
                    StatusCode::Ok,
                    stats_for_route.to_json(worker_count).to_string(),
                )
            })
            .route("POST", "/api/generate", move |req| {
                handle_generate(req, &pool_for_gen, &stats_for_gen, &dtypes_for_gen)
            })
            .route("GET", "/healthz", |_req| {
                Response::text(StatusCode::Ok, "ok")
            })
            .route("GET", "/metrics", |_req| Response {
                status: StatusCode::Ok,
                content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
                body: obs::metrics::render_prometheus().into_bytes(),
            })
            .route("GET", "/debug/stacks", |_req| {
                Response::text(StatusCode::Ok, obs::trace::folded_stacks())
            });

        let server = HttpServer::start(addr, move |req| router.dispatch(&req))?;
        Ok(ApiServer {
            server,
            model_name,
            stats,
            batch: None,
        })
    }

    /// Boot the continuous-batching stack: one model replica behind a
    /// [`crate::batch::BatchRunner`] instead of a worker pool. Queued
    /// requests coalesce into multi-sequence decode steps; the rest of
    /// the route surface is identical to [`ApiServer::start`].
    ///
    /// Batched decoding serves f32 only (the blocked KV cache is f32),
    /// so the model card lists a single dtype.
    pub fn start_batched(
        addr: &str,
        cfg: crate::batch::BatchServerConfig,
        factory: crate::batch::StepBackendFactory,
    ) -> std::io::Result<ApiServer> {
        let runner = Arc::new(crate::batch::BatchRunner::start(cfg, factory)?);
        let model_name = runner.model_name().to_string();
        let stats = Arc::new(ApiStats::default());

        let model_for_routes = model_name.clone();
        let stats_for_gen = Arc::clone(&stats);
        let stats_for_route = Arc::clone(&stats);
        let runner_for_gen = Arc::clone(&runner);
        let router = Router::new()
            .route("GET", "/", |_req| Response::html(frontend::INDEX_HTML))
            .route("GET", "/api/health", move |_req| {
                let body = Json::object(vec![
                    ("status", Json::string("ok")),
                    // One replica; concurrency lives inside the batch.
                    ("workers", Json::Number(1.0)),
                ]);
                Response::json(StatusCode::Ok, body.to_string())
            })
            .route("GET", "/api/models", move |_req| {
                let body = Json::object(vec![
                    ("models", Json::string_array(&[model_for_routes.as_str()])),
                    ("dtypes", Json::string_array(&["f32"])),
                ]);
                Response::json(StatusCode::Ok, body.to_string())
            })
            .route("GET", "/api/stats", move |_req| {
                Response::json(StatusCode::Ok, stats_for_route.to_json(1).to_string())
            })
            .route("POST", "/api/generate", move |req| {
                handle_generate_batched(req, &runner_for_gen, &stats_for_gen)
            })
            .route("GET", "/healthz", |_req| {
                Response::text(StatusCode::Ok, "ok")
            })
            .route("GET", "/metrics", |_req| Response {
                status: StatusCode::Ok,
                content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
                body: obs::metrics::render_prometheus().into_bytes(),
            })
            .route("GET", "/debug/stacks", |_req| {
                Response::text(StatusCode::Ok, obs::trace::folded_stacks())
            });

        let server = HttpServer::start(addr, move |req| router.dispatch(&req))?;
        Ok(ApiServer {
            server,
            model_name,
            stats,
            batch: Some(runner),
        })
    }

    /// Live counters (also served at `GET /api/stats`).
    pub fn stats(&self) -> &ApiStats {
        &self.stats
    }

    /// Bound socket address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The model this server serves.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Graceful shutdown: stop accepting, then drain the batch runner
    /// (if any) so every accepted request still answers.
    pub fn stop(self) {
        self.server.stop();
        drop(self.batch);
    }
}

fn handle_generate_batched(
    req: &Request,
    runner: &crate::batch::BatchRunner,
    stats: &ApiStats,
) -> Response {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let dtype = query_param(&req.query, "dtype").unwrap_or("f32");
    if dtype != "f32" {
        stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            StatusCode::BadRequest,
            Json::object(vec![(
                "error",
                Json::string(format!(
                    "unsupported dtype `{dtype}`; batched serving is f32-only"
                )),
            )])
            .to_string(),
        );
    }
    let (ingredients, seed) = match parse_generate_body(req, stats) {
        Ok(ok) => ok,
        Err(resp) => return resp,
    };
    match runner.submit(ingredients, seed) {
        Ok(out) => {
            stats.generated.fetch_add(1, Ordering::Relaxed);
            stats
                .latency_us_sum
                .fetch_add((out.latency_ms * 1000.0) as u64, Ordering::Relaxed);
            let body = Json::object(vec![
                ("title", Json::string(out.recipe.title)),
                ("ingredients", Json::string_array(&out.recipe.ingredients)),
                ("instructions", Json::string_array(&out.recipe.instructions)),
                ("well_formed", Json::Bool(out.recipe.well_formed)),
                ("model", Json::string(runner.model_name())),
                ("dtype", Json::string("f32")),
                ("latency_ms", Json::Number(out.latency_ms)),
            ]);
            Response::json(StatusCode::Ok, body.to_string())
        }
        Err(crate::batch::SubmitError::PoolExhausted) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            Response::json(
                StatusCode::TooManyRequests,
                Json::object(vec![(
                    "error",
                    Json::string("KV cache exhausted; shrink the request or retry later"),
                )])
                .to_string(),
            )
        }
        Err(crate::batch::SubmitError::QueueFull) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            Response::json(
                StatusCode::ServiceUnavailable,
                Json::object(vec![("error", Json::string("server overloaded, retry"))])
                    .to_string(),
            )
        }
        Err(crate::batch::SubmitError::Closed) => Response::json(
            StatusCode::InternalServerError,
            Json::object(vec![("error", Json::string("batch runner is shut down"))]).to_string(),
        ),
    }
}

/// Parse a generate request body: a non-empty `"ingredients"` string
/// array plus an optional non-negative integer `"seed"`. Shared by the
/// worker-pool and batched handlers; errors arrive as ready 400s.
fn parse_generate_body(
    req: &Request,
    stats: &ApiStats,
) -> Result<(Vec<String>, Option<u64>), Response> {
    let bad = |msg: String| {
        stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        Response::json(
            StatusCode::BadRequest,
            Json::object(vec![("error", Json::string(msg))]).to_string(),
        )
    };
    let parsed = match Json::parse(&req.body_str()) {
        Ok(v) => v,
        Err(e) => return Err(bad(format!("invalid json: {e}"))),
    };
    let ingredients = parsed
        .get("ingredients")
        .map(Json::as_string_vec)
        .unwrap_or_default();
    if ingredients.is_empty() {
        return Err(bad(
            "`ingredients` must be a non-empty array of strings".to_string(),
        ));
    }
    let seed = match parsed.get("seed") {
        None => None,
        Some(v) => match v.as_f64() {
            Some(s) if s >= 0.0 && s.fract() == 0.0 && s <= u64::MAX as f64 => Some(s as u64),
            _ => return Err(bad("`seed` must be a non-negative integer".to_string())),
        },
    };
    Ok((ingredients, seed))
}

/// First value for `key` in a `k=v&k2=v2` query string.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn handle_generate(
    req: &Request,
    pool: &WorkerPool<GenJob, GenOut>,
    stats: &ApiStats,
    dtypes: &[String],
) -> Response {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let default_dtype = dtypes.first().map(String::as_str).unwrap_or("f32");
    let dtype = query_param(&req.query, "dtype").unwrap_or(default_dtype);
    if !dtypes.iter().any(|d| d == dtype) {
        stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            StatusCode::BadRequest,
            Json::object(vec![(
                "error",
                Json::string(format!(
                    "unsupported dtype `{dtype}`; this model serves: {}",
                    dtypes.join(", ")
                )),
            )])
            .to_string(),
        );
    }
    let (ingredients, seed) = match parse_generate_body(req, stats) {
        Ok(ok) => ok,
        Err(resp) => return resp,
    };
    match pool.execute(GenJob {
        ingredients,
        dtype: dtype.to_string(),
        seed,
    }) {
        Ok(out) => {
            stats.generated.fetch_add(1, Ordering::Relaxed);
            stats
                .latency_us_sum
                .fetch_add((out.latency_ms * 1000.0) as u64, Ordering::Relaxed);
            let body = Json::object(vec![
                ("title", Json::string(out.recipe.title)),
                ("ingredients", Json::string_array(&out.recipe.ingredients)),
                ("instructions", Json::string_array(&out.recipe.instructions)),
                ("well_formed", Json::Bool(out.recipe.well_formed)),
                ("model", Json::string(out.model)),
                ("dtype", Json::string(out.dtype)),
                ("latency_ms", Json::Number(out.latency_ms)),
            ]);
            Response::json(StatusCode::Ok, body.to_string())
        }
        Err(PoolError::QueueFull) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            Response::json(
                StatusCode::ServiceUnavailable,
                Json::object(vec![("error", Json::string("server overloaded, retry"))])
                    .to_string(),
            )
        }
        Err(e) => Response::json(
            StatusCode::InternalServerError,
            Json::object(vec![("error", Json::string(e.to_string()))]).to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    /// A deterministic toy backend for API tests.
    struct EchoBackend;

    impl RecipeBackend for EchoBackend {
        fn generate(&mut self, ingredients: &[String]) -> GeneratedRecipe {
            GeneratedRecipe {
                title: format!("{} delight", ingredients[0]),
                ingredients: ingredients.iter().map(|i| format!("1 cup {i}")).collect(),
                instructions: vec![format!("mix the {}", ingredients.join(" and "))],
                well_formed: true,
            }
        }

        fn model_name(&self) -> String {
            "echo-model".into()
        }
    }

    fn boot() -> ApiServer {
        ApiServer::start(
            "127.0.0.1:0",
            2,
            8,
            Arc::new(|_| Box::new(EchoBackend) as Box<dyn RecipeBackend>),
        )
        .unwrap()
    }

    #[test]
    fn health_and_models() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, body) = client.get("/api/health").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("workers").unwrap().as_f64(), Some(2.0));

        let (status, body) = client.get("/api/models").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("echo-model"));
        srv.stop();
    }

    #[test]
    fn generate_roundtrip() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, body) = client
            .post_json("/api/generate", r#"{"ingredients":["flour","water"]}"#)
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("flour delight"));
        assert_eq!(
            v.get("ingredients").unwrap().as_string_vec(),
            vec!["1 cup flour", "1 cup water"]
        );
        assert_eq!(v.get("model").unwrap().as_str(), Some("echo-model"));
        assert!(v.get("latency_ms").unwrap().as_f64().unwrap() >= 0.0);
        srv.stop();
    }

    #[test]
    fn generate_rejects_bad_input() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, _) = client.post_json("/api/generate", "not json").unwrap();
        assert_eq!(status, 400);
        let (status, body) = client.post_json("/api/generate", r#"{}"#).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("ingredients"));
        let (status, _) = client
            .post_json("/api/generate", r#"{"ingredients":[]}"#)
            .unwrap();
        assert_eq!(status, 400);
        srv.stop();
    }

    #[test]
    fn frontend_served_at_root() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, body) = client.get("/").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("<html"), "frontend missing");
        assert!(body.contains("Ratatouille"));
        srv.stop();
    }

    #[test]
    fn stats_counters_track_requests() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        client
            .post_json("/api/generate", r#"{"ingredients":["flour"]}"#)
            .unwrap();
        client.post_json("/api/generate", "broken").unwrap();
        let (status, body) = client.get("/api/stats").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("requests").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("generated").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("bad_requests").unwrap().as_f64(), Some(1.0));
        assert!(v.get("mean_latency_ms").unwrap().as_f64().unwrap() >= 0.0);
        srv.stop();
    }

    /// A backend with an int8 variant that stamps the dtype it used into
    /// the title.
    struct DtypeBackend;

    impl RecipeBackend for DtypeBackend {
        fn generate(&mut self, ingredients: &[String]) -> GeneratedRecipe {
            self.generate_with_dtype(ingredients, "f32")
        }

        fn generate_with_dtype(&mut self, ingredients: &[String], dtype: &str) -> GeneratedRecipe {
            GeneratedRecipe {
                title: format!("{} via {dtype}", ingredients[0]),
                ingredients: ingredients.to_vec(),
                instructions: vec!["cook".into()],
                well_formed: true,
            }
        }

        fn model_name(&self) -> String {
            "dtype-model".into()
        }

        fn dtypes(&self) -> Vec<String> {
            vec!["f32".into(), "int8".into()]
        }
    }

    #[test]
    fn dtype_query_routes_to_variant() {
        let srv = ApiServer::start(
            "127.0.0.1:0",
            1,
            4,
            Arc::new(|_| Box::new(DtypeBackend) as Box<dyn RecipeBackend>),
        )
        .unwrap();
        let client = HttpClient::new(srv.addr());

        // default dtype is the first supported one
        let (status, body) = client
            .post_json("/api/generate", r#"{"ingredients":["rice"]}"#)
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("rice via f32"));
        assert_eq!(v.get("dtype").unwrap().as_str(), Some("f32"));

        // explicit ?dtype=int8 reaches the quantized path and is echoed
        let (status, body) = client
            .post_json("/api/generate?dtype=int8", r#"{"ingredients":["rice"]}"#)
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("rice via int8"));
        assert_eq!(v.get("dtype").unwrap().as_str(), Some("int8"));

        // unsupported dtype is a client error, not a worker crash
        let (status, body) = client
            .post_json("/api/generate?dtype=fp4", r#"{"ingredients":["rice"]}"#)
            .unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("unsupported dtype"));

        // the model card lists the supported set
        let (status, body) = client.get("/api/models").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        assert_eq!(
            v.get("dtypes").unwrap().as_string_vec(),
            vec!["f32", "int8"]
        );
        srv.stop();
    }

    #[test]
    fn dtype_defaults_dont_break_plain_backends() {
        // EchoBackend doesn't implement the dtype hooks: default serves
        // f32 only, and asking for int8 is a 400.
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, body) = client
            .post_json("/api/generate?dtype=int8", r#"{"ingredients":["flour"]}"#)
            .unwrap();
        assert_eq!(status, 400, "{body}");
        let (_, body) = client.get("/api/models").unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("dtypes").unwrap().as_string_vec(), vec!["f32"]);
        srv.stop();
    }

    #[test]
    fn unknown_route_404() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, _) = client.get("/nope").unwrap();
        assert_eq!(status, 404);
        srv.stop();
    }
}

//! The Ratatouille HTTP API: the backend half of Figs. 4–5.
//!
//! Endpoints:
//! * `GET  /`             — the embedded single-page frontend;
//! * `GET  /api/health`   — liveness + worker count + routes;
//! * `GET  /api/models`   — the serving model's card;
//! * `POST /api/generate` — `{"ingredients": ["flour", …]}` →
//!   `{"title", "ingredients", "instructions", "model", "latency_ms"}`;
//! * `GET  /healthz`      — bare-text liveness probe;
//! * `GET  /metrics`      — the `obs` registry in Prometheus text format;
//! * `GET  /debug/stacks` — folded span stacks (flamegraph input);
//! * `GET  /debug/requests`        — completed request-trace summaries;
//! * `GET  /debug/requests/<id>`   — one request's full phase timeline;
//! * `GET  /debug/trace?fmt=chrome` — Chrome trace-event JSON of every
//!   retained request (open in `chrome://tracing` or Perfetto).
//!
//! The API is generic over [`RecipeBackend`] so this crate stays free of
//! model dependencies; the `ratatouille` crate plugs the real models in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use obs::reqtrace::TraceSink;

use crate::frontend;
use crate::http::{HttpServer, Request, Response, StatusCode};
use crate::json::Json;
use crate::router::Router;
use crate::worker::{PoolError, WorkerPool};

/// Live serving counters, exposed at `GET /api/stats` (the observability
/// the paper's dockerized deployment would get from its orchestrator).
#[derive(Debug, Default)]
pub struct ApiStats {
    /// Total generate requests received.
    pub requests: AtomicU64,
    /// Requests that produced a recipe.
    pub generated: AtomicU64,
    /// Requests rejected for bad input.
    pub bad_requests: AtomicU64,
    /// Requests bounced by queue backpressure (503s).
    pub rejected: AtomicU64,
    /// Sum of model latency in microseconds (mean = sum / generated).
    pub latency_us_sum: AtomicU64,
}

impl ApiStats {
    fn to_json(&self, workers: usize) -> Json {
        let generated = self.generated.load(Ordering::Relaxed);
        let lat_sum = self.latency_us_sum.load(Ordering::Relaxed);
        let mean_ms = if generated > 0 {
            (lat_sum as f64 / generated as f64) / 1000.0
        } else {
            0.0
        };
        Json::object(vec![
            ("workers", Json::Number(workers as f64)),
            ("requests", Json::Number(self.requests.load(Ordering::Relaxed) as f64)),
            ("generated", Json::Number(generated as f64)),
            ("bad_requests", Json::Number(self.bad_requests.load(Ordering::Relaxed) as f64)),
            ("rejected", Json::Number(self.rejected.load(Ordering::Relaxed) as f64)),
            ("mean_latency_ms", Json::Number(mean_ms)),
        ])
    }
}

/// A structured recipe produced by a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedRecipe {
    /// Recipe title.
    pub title: String,
    /// Ingredient lines ("2 cups flour").
    pub ingredients: Vec<String>,
    /// Instruction steps.
    pub instructions: Vec<String>,
    /// Whether the generation passed structural validation.
    pub well_formed: bool,
}

/// A recipe-generation backend replica. Each worker thread builds its own
/// via [`RecipeBackendFactory`].
pub trait RecipeBackend {
    /// Generate a recipe from an ingredient list.
    fn generate(&mut self, ingredients: &[String]) -> GeneratedRecipe;

    /// Model card name ("GPT-2 medium").
    fn model_name(&self) -> String;

    /// Generate with a requested weight dtype (one of [`Self::dtypes`]).
    /// The default ignores `dtype`: backends without precision variants
    /// always serve their native weights.
    fn generate_with_dtype(&mut self, ingredients: &[String], dtype: &str) -> GeneratedRecipe {
        let _ = dtype;
        self.generate(ingredients)
    }

    /// Generate with a pinned sampling seed (the request's `"seed"`
    /// field): same seed, same recipe. The default ignores the seed —
    /// backends without seeded decoding stay nondeterministic.
    fn generate_seeded(
        &mut self,
        ingredients: &[String],
        dtype: &str,
        seed: Option<u64>,
    ) -> GeneratedRecipe {
        let _ = seed;
        self.generate_with_dtype(ingredients, dtype)
    }

    /// [`Self::generate_seeded`] with queue metadata attached: the
    /// enqueue stamp (for TTFT attribution from the client's enqueue,
    /// not the worker's pickup) and the request's trace, which model
    /// backends thread into the decode loop as a
    /// [`obs::reqtrace::TraceSink`]. The default ignores the metadata.
    fn generate_traced(
        &mut self,
        ingredients: &[String],
        dtype: &str,
        seed: Option<u64>,
        meta: &obs::reqtrace::TraceMeta,
    ) -> GeneratedRecipe {
        let _ = meta;
        self.generate_seeded(ingredients, dtype, seed)
    }

    /// The weight dtypes this backend can serve; the first entry is the
    /// default when a request names none. The server validates
    /// `?dtype=…` against this set at request time (400 otherwise).
    fn dtypes(&self) -> Vec<String> {
        vec!["f32".to_string()]
    }
}

/// Thread-safe factory producing per-worker backend replicas.
pub type RecipeBackendFactory = Arc<dyn Fn(usize) -> Box<dyn RecipeBackend> + Send + Sync>;

/// The assembled Ratatouille API server.
pub struct ApiServer {
    server: HttpServer,
    model_name: String,
    stats: Arc<ApiStats>,
    /// Present on the continuous-batching stack: kept so the runner
    /// outlives the HTTP handlers and joins on drop.
    batch: Option<Arc<crate::batch::BatchRunner>>,
}

struct GenJob {
    ingredients: Vec<String>,
    dtype: String,
    seed: Option<u64>,
    /// Stamp taken in the handler when the job entered the pool queue.
    enqueued_ns: u64,
    /// The request's trace, if the HTTP layer attached one.
    trace: Option<obs::reqtrace::TraceHandle>,
}

struct GenOut {
    recipe: GeneratedRecipe,
    model: String,
    dtype: String,
    latency_ms: f64,
}

impl ApiServer {
    /// Boot the full stack: worker pool + router + HTTP server.
    ///
    /// `addr` like `"127.0.0.1:0"`; `workers` is the replica count
    /// (the paper's "replicate the docker" axis).
    pub fn start(
        addr: &str,
        workers: usize,
        queue_cap: usize,
        factory: RecipeBackendFactory,
    ) -> std::io::Result<ApiServer> {
        // Sniff the model card from a throwaway replica.
        let probe = factory(usize::MAX);
        let model_name = probe.model_name();
        let dtypes = Arc::new(probe.dtypes());
        drop(probe);

        let pool: Arc<WorkerPool<GenJob, GenOut>> = Arc::new(WorkerPool::new(
            workers,
            queue_cap,
            move |wi| {
                let mut backend = factory(wi);
                // Per-model twins of the aggregate histograms, resolved
                // once per worker (never in the hot path).
                let model_label = obs::metrics::label_value(&backend.model_name());
                let labeled_latency = obs::metrics::histogram(&format!(
                    "generate_latency_ns{{model=\"{model_label}\"}}"
                ));
                let labeled_queue_wait = obs::metrics::histogram(&format!(
                    "request_queue_wait_ns{{model=\"{model_label}\"}}"
                ));
                move |job: GenJob| {
                    let start = obs::Clock::now();
                    let wait_ns = start.at_ns().saturating_sub(job.enqueued_ns);
                    obs::static_histogram!("request_queue_wait_ns").observe(wait_ns);
                    labeled_queue_wait.observe(wait_ns);
                    let meta = obs::reqtrace::TraceMeta {
                        enqueued_ns: job.enqueued_ns,
                        trace: job.trace,
                    };
                    // Pooled admission is implicit (a worker picked the
                    // job up); no KV cache, so both args are 0.
                    meta.record(obs::reqtrace::Phase::Admit, 0, 0);
                    let recipe =
                        backend.generate_traced(&job.ingredients, &job.dtype, job.seed, &meta);
                    let ns = start.elapsed_ns();
                    obs::static_histogram!("generate_latency_ns").observe(ns);
                    labeled_latency.observe(ns);
                    GenOut {
                        recipe,
                        model: backend.model_name(),
                        dtype: job.dtype,
                        latency_ms: ns as f64 / 1e6,
                    }
                }
            },
        )?);

        let model_for_routes = model_name.clone();
        let dtypes_for_routes: Vec<String> = dtypes.to_vec();
        let dtypes_for_gen = Arc::clone(&dtypes);
        let pool_for_gen = Arc::clone(&pool);
        let worker_count = pool.workers();
        let stats = Arc::new(ApiStats::default());
        let stats_for_gen = Arc::clone(&stats);
        let stats_for_route = Arc::clone(&stats);
        let router = Router::new()
            .route("GET", "/", |_req| Response::html(frontend::INDEX_HTML))
            .route("GET", "/api/health", move |_req| {
                let body = Json::object(vec![
                    ("status", Json::string("ok")),
                    ("workers", Json::Number(worker_count as f64)),
                ]);
                Response::json(StatusCode::Ok, body.to_string())
            })
            .route("GET", "/api/models", move |_req| {
                let body = Json::object(vec![
                    ("models", Json::string_array(&[model_for_routes.as_str()])),
                    ("dtypes", Json::string_array(&dtypes_for_routes)),
                ]);
                Response::json(StatusCode::Ok, body.to_string())
            })
            .route("GET", "/api/stats", move |_req| {
                Response::json(
                    StatusCode::Ok,
                    stats_for_route.to_json(worker_count).to_string(),
                )
            })
            .route("POST", "/api/generate", move |req| {
                handle_generate(req, &pool_for_gen, &stats_for_gen, &dtypes_for_gen)
            })
            .route("GET", "/healthz", |_req| {
                Response::text(StatusCode::Ok, "ok")
            })
            .route("GET", "/metrics", |_req| Response {
                status: StatusCode::Ok,
                content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
                body: obs::metrics::render_prometheus().into_bytes(),
            })
            .route("GET", "/debug/stacks", |_req| {
                Response::text(StatusCode::Ok, obs::trace::folded_stacks())
            })
            .route("GET", "/debug/requests", handle_debug_requests)
            .route_prefix("GET", "/debug/requests/", handle_debug_request_detail)
            .route("GET", "/debug/trace", handle_debug_trace);

        let server = HttpServer::start(addr, move |req| router.dispatch(&req))?;
        Ok(ApiServer {
            server,
            model_name,
            stats,
            batch: None,
        })
    }

    /// Boot the continuous-batching stack: one model replica behind a
    /// [`crate::batch::BatchRunner`] instead of a worker pool. Queued
    /// requests coalesce into multi-sequence decode steps; the rest of
    /// the route surface is identical to [`ApiServer::start`].
    ///
    /// Batched decoding serves f32 only (the blocked KV cache is f32),
    /// so the model card lists a single dtype.
    pub fn start_batched(
        addr: &str,
        cfg: crate::batch::BatchServerConfig,
        factory: crate::batch::StepBackendFactory,
    ) -> std::io::Result<ApiServer> {
        let runner = Arc::new(crate::batch::BatchRunner::start(cfg, factory)?);
        let model_name = runner.model_name().to_string();
        let stats = Arc::new(ApiStats::default());

        let model_for_routes = model_name.clone();
        let stats_for_gen = Arc::clone(&stats);
        let stats_for_route = Arc::clone(&stats);
        let runner_for_gen = Arc::clone(&runner);
        let router = Router::new()
            .route("GET", "/", |_req| Response::html(frontend::INDEX_HTML))
            .route("GET", "/api/health", move |_req| {
                let body = Json::object(vec![
                    ("status", Json::string("ok")),
                    // One replica; concurrency lives inside the batch.
                    ("workers", Json::Number(1.0)),
                ]);
                Response::json(StatusCode::Ok, body.to_string())
            })
            .route("GET", "/api/models", move |_req| {
                let body = Json::object(vec![
                    ("models", Json::string_array(&[model_for_routes.as_str()])),
                    ("dtypes", Json::string_array(&["f32"])),
                ]);
                Response::json(StatusCode::Ok, body.to_string())
            })
            .route("GET", "/api/stats", move |_req| {
                Response::json(StatusCode::Ok, stats_for_route.to_json(1).to_string())
            })
            .route("POST", "/api/generate", move |req| {
                handle_generate_batched(req, &runner_for_gen, &stats_for_gen)
            })
            .route("GET", "/healthz", |_req| {
                Response::text(StatusCode::Ok, "ok")
            })
            .route("GET", "/metrics", |_req| Response {
                status: StatusCode::Ok,
                content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
                body: obs::metrics::render_prometheus().into_bytes(),
            })
            .route("GET", "/debug/stacks", |_req| {
                Response::text(StatusCode::Ok, obs::trace::folded_stacks())
            })
            .route("GET", "/debug/requests", handle_debug_requests)
            .route_prefix("GET", "/debug/requests/", handle_debug_request_detail)
            .route("GET", "/debug/trace", handle_debug_trace);

        let server = HttpServer::start(addr, move |req| router.dispatch(&req))?;
        Ok(ApiServer {
            server,
            model_name,
            stats,
            batch: Some(runner),
        })
    }

    /// Live counters (also served at `GET /api/stats`).
    pub fn stats(&self) -> &ApiStats {
        &self.stats
    }

    /// Bound socket address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.addr()
    }

    /// The model this server serves.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Graceful shutdown: stop accepting, then drain the batch runner
    /// (if any) so every accepted request still answers.
    pub fn stop(self) {
        self.server.stop();
        drop(self.batch);
    }
}

fn handle_generate_batched(
    req: &Request,
    runner: &crate::batch::BatchRunner,
    stats: &ApiStats,
) -> Response {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let dtype = query_param(&req.query, "dtype").unwrap_or("f32");
    if dtype != "f32" {
        stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            StatusCode::BadRequest,
            Json::object(vec![(
                "error",
                Json::string(format!(
                    "unsupported dtype `{dtype}`; batched serving is f32-only"
                )),
            )])
            .to_string(),
        );
    }
    let (ingredients, seed) = match parse_generate_body(req, stats) {
        Ok(ok) => ok,
        Err(resp) => return resp,
    };
    // The request is about to enter the batch queue; recording the
    // phase here (not inside `submit_traced`) keeps the span open
    // before any backend call, which xlint's trace-before-backend
    // rule pins for every serving `handle*` root.
    if let Some(t) = &req.trace {
        t.record_phase(obs::reqtrace::Phase::Enqueue, 0, 0);
    }
    match runner.submit_traced(ingredients, seed, req.trace.clone()) {
        Ok(out) => {
            stats.generated.fetch_add(1, Ordering::Relaxed);
            stats
                .latency_us_sum
                .fetch_add((out.latency_ms * 1000.0) as u64, Ordering::Relaxed);
            let body = Json::object(vec![
                ("title", Json::string(out.recipe.title)),
                ("ingredients", Json::string_array(&out.recipe.ingredients)),
                ("instructions", Json::string_array(&out.recipe.instructions)),
                ("well_formed", Json::Bool(out.recipe.well_formed)),
                ("model", Json::string(runner.model_name())),
                ("dtype", Json::string("f32")),
                ("latency_ms", Json::Number(out.latency_ms)),
            ]);
            Response::json(StatusCode::Ok, body.to_string())
        }
        Err(crate::batch::SubmitError::PoolExhausted) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            Response::json(
                StatusCode::TooManyRequests,
                Json::object(vec![(
                    "error",
                    Json::string("KV cache exhausted; shrink the request or retry later"),
                )])
                .to_string(),
            )
        }
        Err(crate::batch::SubmitError::QueueFull) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            Response::json(
                StatusCode::ServiceUnavailable,
                Json::object(vec![("error", Json::string("server overloaded, retry"))])
                    .to_string(),
            )
        }
        Err(crate::batch::SubmitError::Closed) => Response::json(
            StatusCode::InternalServerError,
            Json::object(vec![("error", Json::string("batch runner is shut down"))]).to_string(),
        ),
    }
}

/// Parse a generate request body: a non-empty `"ingredients"` string
/// array plus an optional non-negative integer `"seed"`. Shared by the
/// worker-pool and batched handlers; errors arrive as ready 400s.
fn parse_generate_body(
    req: &Request,
    stats: &ApiStats,
) -> Result<(Vec<String>, Option<u64>), Response> {
    let bad = |msg: String| {
        stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        Response::json(
            StatusCode::BadRequest,
            Json::object(vec![("error", Json::string(msg))]).to_string(),
        )
    };
    let parsed = match Json::parse(&req.body_str()) {
        Ok(v) => v,
        Err(e) => return Err(bad(format!("invalid json: {e}"))),
    };
    let ingredients = parsed
        .get("ingredients")
        .map(Json::as_string_vec)
        .unwrap_or_default();
    if ingredients.is_empty() {
        return Err(bad(
            "`ingredients` must be a non-empty array of strings".to_string(),
        ));
    }
    let seed = match parsed.get("seed") {
        None => None,
        Some(v) => match v.as_f64() {
            Some(s) if s >= 0.0 && s.fract() == 0.0 && s <= u64::MAX as f64 => Some(s as u64),
            _ => return Err(bad("`seed` must be a non-negative integer".to_string())),
        },
    };
    Ok((ingredients, seed))
}

/// First value for `key` in a `k=v&k2=v2` query string.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// `GET /debug/requests` — JSON summaries of every retained completed
/// trace (bounded ring + slow-request reservoir), newest first.
fn handle_debug_requests(_req: &Request) -> Response {
    let traces = obs::reqtrace::completed();
    let mut items = Vec::with_capacity(traces.len());
    for t in &traces {
        let phases = t.phases();
        let decode_steps = phases
            .iter()
            .filter(|p| p.phase == obs::reqtrace::Phase::DecodeStep)
            .count();
        // HTTP status from the final `respond` record (absent only if
        // the phase log overflowed before the response was written).
        let status = phases
            .iter()
            .rev()
            .find(|p| p.phase == obs::reqtrace::Phase::Respond)
            .map_or(Json::Null, |p| Json::Number(p.a as f64));
        items.push(Json::object(vec![
            ("id", Json::Number(t.id() as f64)),
            ("start_ns", Json::Number(t.start_ns() as f64)),
            ("duration_ns", Json::Number(t.duration_ns() as f64)),
            ("phases", Json::Number(phases.len() as f64)),
            ("decode_steps", Json::Number(decode_steps as f64)),
            ("dropped", Json::Number(t.dropped() as f64)),
            ("status", status),
        ]));
    }
    let body = Json::object(vec![("requests", Json::Array(items))]);
    Response::json(StatusCode::Ok, body.to_string())
}

/// `GET /debug/requests/<id>` — one request's full phase timeline, with
/// per-phase argument names from [`obs::reqtrace::Phase::arg_keys`].
fn handle_debug_request_detail(req: &Request) -> Response {
    let id = match req
        .path
        .strip_prefix("/debug/requests/")
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(id) => id,
        None => {
            return Response::json(
                StatusCode::BadRequest,
                Json::object(vec![(
                    "error",
                    Json::string("trace id must be an integer"),
                )])
                .to_string(),
            )
        }
    };
    let Some(t) = obs::reqtrace::find(id) else {
        return Response::json(
            StatusCode::NotFound,
            Json::object(vec![(
                "error",
                Json::string(format!(
                    "trace {id} not retained (ring keeps the last {}, \
                     the reservoir the {} slowest)",
                    obs::reqtrace::RING_CAPACITY,
                    obs::reqtrace::SLOW_CAPACITY
                )),
            )])
            .to_string(),
        );
    };
    let timeline: Vec<Json> = t
        .phases()
        .iter()
        .map(|p| {
            let (ka, kb) = p.phase.arg_keys();
            Json::object(vec![
                ("phase", Json::string(p.phase.name())),
                ("at_ns", Json::Number(p.at_ns as f64)),
                (ka, Json::Number(p.a as f64)),
                (kb, Json::Number(p.b as f64)),
            ])
        })
        .collect();
    let body = Json::object(vec![
        ("id", Json::Number(t.id() as f64)),
        ("start_ns", Json::Number(t.start_ns() as f64)),
        ("done_ns", Json::Number(t.done_ns() as f64)),
        ("duration_ns", Json::Number(t.duration_ns() as f64)),
        ("dropped", Json::Number(t.dropped() as f64)),
        ("timeline", Json::Array(timeline)),
    ]);
    Response::json(StatusCode::Ok, body.to_string())
}

/// `GET /debug/trace?fmt=chrome` — every retained trace as Chrome
/// trace-event JSON (load in `chrome://tracing` or Perfetto).
fn handle_debug_trace(req: &Request) -> Response {
    match query_param(&req.query, "fmt") {
        None | Some("chrome") => Response {
            status: StatusCode::Ok,
            content_type: "application/json".into(),
            body: obs::reqtrace::chrome_trace_json().into_bytes(),
        },
        Some(other) => Response::json(
            StatusCode::BadRequest,
            Json::object(vec![(
                "error",
                Json::string(format!("unknown trace format `{other}`; try fmt=chrome")),
            )])
            .to_string(),
        ),
    }
}

fn handle_generate(
    req: &Request,
    pool: &WorkerPool<GenJob, GenOut>,
    stats: &ApiStats,
    dtypes: &[String],
) -> Response {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let default_dtype = dtypes.first().map(String::as_str).unwrap_or("f32");
    let dtype = query_param(&req.query, "dtype").unwrap_or(default_dtype);
    if !dtypes.iter().any(|d| d == dtype) {
        stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        return Response::json(
            StatusCode::BadRequest,
            Json::object(vec![(
                "error",
                Json::string(format!(
                    "unsupported dtype `{dtype}`; this model serves: {}",
                    dtypes.join(", ")
                )),
            )])
            .to_string(),
        );
    }
    let (ingredients, seed) = match parse_generate_body(req, stats) {
        Ok(ok) => ok,
        Err(resp) => return resp,
    };
    // Open the request's queue span before handing off to the pool
    // (xlint's trace-before-backend rule pins this ordering).
    if let Some(t) = &req.trace {
        t.record_phase(obs::reqtrace::Phase::Enqueue, 0, 0);
    }
    match pool.execute(GenJob {
        ingredients,
        dtype: dtype.to_string(),
        seed,
        enqueued_ns: obs::Clock::now().at_ns(),
        trace: req.trace.clone(),
    }) {
        Ok(out) => {
            stats.generated.fetch_add(1, Ordering::Relaxed);
            stats
                .latency_us_sum
                .fetch_add((out.latency_ms * 1000.0) as u64, Ordering::Relaxed);
            let body = Json::object(vec![
                ("title", Json::string(out.recipe.title)),
                ("ingredients", Json::string_array(&out.recipe.ingredients)),
                ("instructions", Json::string_array(&out.recipe.instructions)),
                ("well_formed", Json::Bool(out.recipe.well_formed)),
                ("model", Json::string(out.model)),
                ("dtype", Json::string(out.dtype)),
                ("latency_ms", Json::Number(out.latency_ms)),
            ]);
            Response::json(StatusCode::Ok, body.to_string())
        }
        Err(PoolError::QueueFull) => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            Response::json(
                StatusCode::ServiceUnavailable,
                Json::object(vec![("error", Json::string("server overloaded, retry"))])
                    .to_string(),
            )
        }
        Err(e) => Response::json(
            StatusCode::InternalServerError,
            Json::object(vec![("error", Json::string(e.to_string()))]).to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;

    /// A deterministic toy backend for API tests.
    struct EchoBackend;

    impl RecipeBackend for EchoBackend {
        fn generate(&mut self, ingredients: &[String]) -> GeneratedRecipe {
            GeneratedRecipe {
                title: format!("{} delight", ingredients[0]),
                ingredients: ingredients.iter().map(|i| format!("1 cup {i}")).collect(),
                instructions: vec![format!("mix the {}", ingredients.join(" and "))],
                well_formed: true,
            }
        }

        fn model_name(&self) -> String {
            "echo-model".into()
        }
    }

    fn boot() -> ApiServer {
        ApiServer::start(
            "127.0.0.1:0",
            2,
            8,
            Arc::new(|_| Box::new(EchoBackend) as Box<dyn RecipeBackend>),
        )
        .unwrap()
    }

    #[test]
    fn health_and_models() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, body) = client.get("/api/health").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("workers").unwrap().as_f64(), Some(2.0));

        let (status, body) = client.get("/api/models").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("echo-model"));
        srv.stop();
    }

    #[test]
    fn generate_roundtrip() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, body) = client
            .post_json("/api/generate", r#"{"ingredients":["flour","water"]}"#)
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("flour delight"));
        assert_eq!(
            v.get("ingredients").unwrap().as_string_vec(),
            vec!["1 cup flour", "1 cup water"]
        );
        assert_eq!(v.get("model").unwrap().as_str(), Some("echo-model"));
        assert!(v.get("latency_ms").unwrap().as_f64().unwrap() >= 0.0);
        srv.stop();
    }

    #[test]
    fn generate_rejects_bad_input() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, _) = client.post_json("/api/generate", "not json").unwrap();
        assert_eq!(status, 400);
        let (status, body) = client.post_json("/api/generate", r#"{}"#).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("ingredients"));
        let (status, _) = client
            .post_json("/api/generate", r#"{"ingredients":[]}"#)
            .unwrap();
        assert_eq!(status, 400);
        srv.stop();
    }

    #[test]
    fn frontend_served_at_root() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, body) = client.get("/").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("<html"), "frontend missing");
        assert!(body.contains("Ratatouille"));
        srv.stop();
    }

    #[test]
    fn stats_counters_track_requests() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        client
            .post_json("/api/generate", r#"{"ingredients":["flour"]}"#)
            .unwrap();
        client.post_json("/api/generate", "broken").unwrap();
        let (status, body) = client.get("/api/stats").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("requests").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("generated").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("bad_requests").unwrap().as_f64(), Some(1.0));
        assert!(v.get("mean_latency_ms").unwrap().as_f64().unwrap() >= 0.0);
        srv.stop();
    }

    /// A backend with an int8 variant that stamps the dtype it used into
    /// the title.
    struct DtypeBackend;

    impl RecipeBackend for DtypeBackend {
        fn generate(&mut self, ingredients: &[String]) -> GeneratedRecipe {
            self.generate_with_dtype(ingredients, "f32")
        }

        fn generate_with_dtype(&mut self, ingredients: &[String], dtype: &str) -> GeneratedRecipe {
            GeneratedRecipe {
                title: format!("{} via {dtype}", ingredients[0]),
                ingredients: ingredients.to_vec(),
                instructions: vec!["cook".into()],
                well_formed: true,
            }
        }

        fn model_name(&self) -> String {
            "dtype-model".into()
        }

        fn dtypes(&self) -> Vec<String> {
            vec!["f32".into(), "int8".into()]
        }
    }

    #[test]
    fn dtype_query_routes_to_variant() {
        let srv = ApiServer::start(
            "127.0.0.1:0",
            1,
            4,
            Arc::new(|_| Box::new(DtypeBackend) as Box<dyn RecipeBackend>),
        )
        .unwrap();
        let client = HttpClient::new(srv.addr());

        // default dtype is the first supported one
        let (status, body) = client
            .post_json("/api/generate", r#"{"ingredients":["rice"]}"#)
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("rice via f32"));
        assert_eq!(v.get("dtype").unwrap().as_str(), Some("f32"));

        // explicit ?dtype=int8 reaches the quantized path and is echoed
        let (status, body) = client
            .post_json("/api/generate?dtype=int8", r#"{"ingredients":["rice"]}"#)
            .unwrap();
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("rice via int8"));
        assert_eq!(v.get("dtype").unwrap().as_str(), Some("int8"));

        // unsupported dtype is a client error, not a worker crash
        let (status, body) = client
            .post_json("/api/generate?dtype=fp4", r#"{"ingredients":["rice"]}"#)
            .unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("unsupported dtype"));

        // the model card lists the supported set
        let (status, body) = client.get("/api/models").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        assert_eq!(
            v.get("dtypes").unwrap().as_string_vec(),
            vec!["f32", "int8"]
        );
        srv.stop();
    }

    #[test]
    fn dtype_defaults_dont_break_plain_backends() {
        // EchoBackend doesn't implement the dtype hooks: default serves
        // f32 only, and asking for int8 is a 400.
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, body) = client
            .post_json("/api/generate?dtype=int8", r#"{"ingredients":["flour"]}"#)
            .unwrap();
        assert_eq!(status, 400, "{body}");
        let (_, body) = client.get("/api/models").unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("dtypes").unwrap().as_string_vec(), vec!["f32"]);
        srv.stop();
    }

    #[test]
    fn debug_requests_expose_the_full_trace_timeline() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, headers, _) = client
            .post_json_with_headers("/api/generate", r#"{"ingredients":["kale"]}"#)
            .unwrap();
        assert_eq!(status, 200);
        let id: u64 = headers
            .iter()
            .find(|(k, _)| k == "x-trace-id")
            .and_then(|(_, v)| v.parse().ok())
            .expect("x-trace-id header on a traced response");

        // The summary list retains the request.
        let (status, body) = client.get("/debug/requests").unwrap();
        assert_eq!(status, 200);
        let v = Json::parse(&body).unwrap();
        let ids: Vec<f64> = v
            .get("requests")
            .and_then(|r| r.as_array().map(|a| a.to_vec()))
            .unwrap_or_default()
            .iter()
            .filter_map(|e| e.get("id").and_then(Json::as_f64))
            .collect();
        assert!(ids.contains(&(id as f64)), "{body}");

        // The detail view reconstructs the lifecycle in order: the
        // pooled path records accept → enqueue → admit → respond.
        let (status, body) = client.get(&format!("/debug/requests/{id}")).unwrap();
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_f64), Some(id as f64));
        assert!(v.get("duration_ns").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
        let phases: Vec<String> = v
            .get("timeline")
            .and_then(|t| t.as_array().map(|a| a.to_vec()))
            .unwrap_or_default()
            .iter()
            .filter_map(|e| e.get("phase").and_then(|p| p.as_str().map(str::to_string)))
            .collect();
        assert_eq!(
            phases,
            vec!["accept", "enqueue", "admit", "respond"],
            "{body}"
        );

        // Unknown ids 404, garbage ids 400.
        let (status, _) = client.get("/debug/requests/999999999").unwrap();
        assert_eq!(status, 404);
        let (status, _) = client.get("/debug/requests/not-a-number").unwrap();
        assert_eq!(status, 400);

        // The Chrome export is a JSON array of complete events.
        let (status, body) = client.get("/debug/trace?fmt=chrome").unwrap();
        assert_eq!(status, 200);
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        assert!(body.contains("\"ph\":\"X\""), "{body}");
        assert!(Json::parse(&body).is_ok(), "chrome export must parse");
        let (status, _) = client.get("/debug/trace?fmt=svg").unwrap();
        assert_eq!(status, 400);
        srv.stop();
    }

    #[test]
    fn unknown_route_404() {
        let srv = boot();
        let client = HttpClient::new(srv.addr());
        let (status, _) = client.get("/nope").unwrap();
        assert_eq!(status, 404);
        srv.stop();
    }
}

//! A tiny blocking HTTP/1.1 client for tests, examples and the CLI.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client bound to one server address.
#[derive(Debug, Clone, Copy)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl HttpClient {
    /// A client for `addr` with a 30 s timeout.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET path` → `(status, body)`.
    pub fn get(&self, path: &str) -> std::io::Result<(u16, String)> {
        self.request(&format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        ))
    }

    /// `POST path` with a JSON body → `(status, body)`.
    pub fn post_json(&self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request(&format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        ))
    }

    /// `POST path` with a JSON body → `(status, headers, body)`. The
    /// header-exposing variant, for reading `X-Trace-Id` off a response.
    pub fn post_json_with_headers(
        &self,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, Vec<(String, String)>, String)> {
        let raw = self.request_raw(&format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        ))?;
        parse_response_with_headers(&raw)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"))
    }

    fn request(&self, raw: &str) -> std::io::Result<(u16, String)> {
        let response = self.request_raw(raw)?;
        parse_response(&response)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"))
    }

    fn request_raw(&self, raw: &str) -> std::io::Result<String> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut stream = stream;
        stream.write_all(raw.as_bytes())?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        Ok(response)
    }
}

/// Split a raw HTTP response into `(status, body)`.
pub fn parse_response(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split(' ').nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
    Some((status, body))
}

/// Split a raw HTTP response into `(status, headers, body)`. Header
/// names are lowercased; values keep their wire form.
pub fn parse_response_with_headers(raw: &str) -> Option<(u16, Vec<(String, String)>, String)> {
    let (head, body) = raw.split_once("\r\n\r\n")?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (k, v) = line.split_once(':')?;
            Some((k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Some((status, headers, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpServer, Response, StatusCode};

    #[test]
    fn parse_response_extracts_status_and_body() {
        let raw = "HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\nnop";
        assert_eq!(parse_response(raw), Some((404, "nop".to_string())));
        assert_eq!(parse_response("garbage"), None);
    }

    #[test]
    fn parse_response_with_headers_extracts_all_three() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nX-Trace-Id: 42\r\n\r\nok";
        let (status, headers, body) = parse_response_with_headers(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        assert!(headers.contains(&("x-trace-id".to_string(), "42".to_string())));
    }

    #[test]
    fn headers_variant_sees_the_trace_id() {
        let server =
            HttpServer::start("127.0.0.1:0", |_req| Response::text(StatusCode::Ok, "ok")).unwrap();
        let client = HttpClient::new(server.addr());
        let (status, headers, body) = client.post_json_with_headers("/x", "{}").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok");
        // The connection loop traces every parsed request, so the
        // header is always present on this path.
        assert!(
            headers.iter().any(|(k, _)| k == "x-trace-id"),
            "{headers:?}"
        );
        server.stop();
    }

    #[test]
    fn client_server_roundtrip() {
        let server = HttpServer::start("127.0.0.1:0", |req| {
            Response::text(StatusCode::Ok, format!("{} {}", req.method, req.body_str()))
        })
        .unwrap();
        let client = HttpClient::new(server.addr());
        let (status, body) = client.post_json("/x", r#"{"a":1}"#).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"POST {"a":1}"#);
        server.stop();
    }
}

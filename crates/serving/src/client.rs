//! A tiny blocking HTTP/1.1 client for tests, examples and the CLI.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client bound to one server address.
#[derive(Debug, Clone, Copy)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl HttpClient {
    /// A client for `addr` with a 30 s timeout.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET path` → `(status, body)`.
    pub fn get(&self, path: &str) -> std::io::Result<(u16, String)> {
        self.request(&format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr
        ))
    }

    /// `POST path` with a JSON body → `(status, body)`.
    pub fn post_json(&self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request(&format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.addr,
            body.len(),
            body
        ))
    }

    fn request(&self, raw: &str) -> std::io::Result<(u16, String)> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut stream = stream;
        stream.write_all(raw.as_bytes())?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        parse_response(&response)
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad response"))
    }
}

/// Split a raw HTTP response into `(status, body)`.
pub fn parse_response(raw: &str) -> Option<(u16, String)> {
    let status: u16 = raw.split(' ').nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string())?;
    Some((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpServer, Response, StatusCode};

    #[test]
    fn parse_response_extracts_status_and_body() {
        let raw = "HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\nnop";
        assert_eq!(parse_response(raw), Some((404, "nop".to_string())));
        assert_eq!(parse_response("garbage"), None);
    }

    #[test]
    fn client_server_roundtrip() {
        let server = HttpServer::start("127.0.0.1:0", |req| {
            Response::text(StatusCode::Ok, format!("{} {}", req.method, req.body_str()))
        })
        .unwrap();
        let client = HttpClient::new(server.addr());
        let (status, body) = client.post_json("/x", r#"{"a":1}"#).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"POST {"a":1}"#);
        server.stop();
    }
}

//! Continuous-batching request scheduling (the vLLM-style serving path).
//!
//! The per-request [`crate::worker::WorkerPool`] gives each request its
//! own model replica and decodes it alone — fine at low load, wasteful
//! the moment `serving_queue_depth` climbs: every queued request pays a
//! full per-token GEMV while its neighbours wait. This module replaces
//! the pool with **one** model replica driven by a [`BatchRunner`]
//! thread that coalesces queued requests into a single batched decode
//! pass, admitting new requests and retiring finished ones *between
//! token steps* (continuous batching), so one `[B, D]` GEMM serves B
//! requests per step.
//!
//! The runner is generic over [`StepBackend`] — the models side
//! (`ratatouille::BatchModelBackend`) adapts `BatchGenerator` to it —
//! so this crate stays model-free and the scheduler is testable with a
//! scripted fake.
//!
//! Scheduling policy, deliberately simple and deterministic:
//!
//! * requests are admitted FIFO whenever the backend has a slot *and*
//!   pool capacity; admission order never depends on timing races
//!   because only the runner thread admits;
//! * a [`Scheduler`] watches the queue depth with hysteresis: above
//!   `depth_hi` it enters *coalescing* mode (an idle-batch step first
//!   waits up to `coalesce_wait_ms` for another arrival so steps run
//!   fuller), below `depth_lo` it leaves it (latency wins again);
//! * a request the pool cannot cover even when the batch is empty is
//!   rejected with [`SubmitError::PoolExhausted`] — the API maps it to
//!   429 (`Retry-After` semantics), distinct from the 503 a full
//!   submission queue produces.
//!
//! Batching never changes bytes: the backend's determinism contract
//! (see `ratatouille_models::batch`) guarantees every admitted request
//! streams the same tokens it would have streamed solo.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use crate::api::GeneratedRecipe;

/// Queue-depth hysteresis: decides when the runner should trade a little
/// latency (waiting for stragglers) for a fuller batch. Pure state
/// machine — unit-testable without threads.
#[derive(Debug, Clone)]
pub struct Scheduler {
    depth_hi: usize,
    depth_lo: usize,
    coalescing: bool,
}

impl Scheduler {
    /// Hysteresis band: coalesce at `depth >= depth_hi`, stop at
    /// `depth <= depth_lo`. `depth_lo` is clamped below `depth_hi`.
    pub fn new(depth_hi: usize, depth_lo: usize) -> Self {
        let hi = depth_hi.max(1);
        Scheduler {
            depth_hi: hi,
            depth_lo: depth_lo.min(hi.saturating_sub(1)),
            coalescing: false,
        }
    }

    /// Feed the current queue depth (waiting, not yet admitted).
    /// Depths inside the band keep the previous mode (hysteresis).
    pub fn observe_depth(&mut self, depth: usize) {
        if depth >= self.depth_hi {
            self.coalescing = true;
        } else if depth <= self.depth_lo {
            self.coalescing = false;
        }
    }

    /// Whether the runner is in coalescing mode.
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// How many waiting requests to admit right now, given the
    /// backend's free slots. FIFO and greedy: continuous batching fills
    /// every free slot every step; the coalescing mode only governs
    /// *waiting for more arrivals*, never holds back work already here.
    pub fn admit_quota(&self, free_slots: usize, waiting: usize) -> usize {
        free_slots.min(waiting)
    }

    /// Whether to pause briefly for more arrivals before stepping a
    /// non-full batch: only in coalescing mode, only when nothing is
    /// waiting (anything waiting would be admitted instead).
    pub fn should_coalesce_wait(&self, free_slots: usize, waiting: usize) -> bool {
        self.coalescing && free_slots > 0 && waiting == 0
    }
}

/// Why a batched admission was refused by the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Admitted; the id tags this request in [`StepBackend::step`]
    /// results.
    Admitted(u64),
    /// The KV pool cannot cover the request's worst case — surfaced to
    /// the client as 429.
    PoolExhausted,
    /// No batch slot free — the runner re-queues and retries next step.
    BatchFull,
}

/// One model replica that decodes many requests a token step at a time.
///
/// Implementations live on the models side; the runner only needs these
/// four verbs. Backends are built *inside* the runner thread (models
/// hold non-`Send` `Rc` autograd handles) via [`StepBackendFactory`].
pub trait StepBackend {
    /// Model card name (served at `/api/models`).
    fn model_name(&self) -> String;

    /// Try to admit a request. `seed` pins the sampling RNG (the
    /// "same seed, same output" contract); `None` lets the backend pick.
    fn admit(&mut self, ingredients: &[String], seed: Option<u64>) -> AdmitOutcome;

    /// [`StepBackend::admit`] with queue metadata attached: the enqueue
    /// stamp (for queue-wait / TTFT attribution) and the request's
    /// trace, which the backend threads into its decode engine so every
    /// prefill chunk and token step lands on the request's timeline.
    /// Defaults to plain `admit` (scripted test backends stay untraced).
    fn admit_traced(
        &mut self,
        ingredients: &[String],
        seed: Option<u64>,
        meta: obs::reqtrace::TraceMeta,
    ) -> AdmitOutcome {
        let _ = meta;
        self.admit(ingredients, seed)
    }

    /// Run one token step for every active sequence; returns the
    /// requests that finished this step as `(id, recipe)`.
    fn step(&mut self) -> Vec<(u64, GeneratedRecipe)>;

    /// Currently decoding sequences.
    fn active(&self) -> usize;

    /// Free batch slots (`max_batch - active`).
    fn free_slots(&self) -> usize;
}

/// Built inside the runner thread, once.
pub type StepBackendFactory = Arc<dyn Fn() -> Box<dyn StepBackend> + Send + Sync>;

/// Batched-serving knobs.
#[derive(Debug, Clone)]
pub struct BatchServerConfig {
    /// Bound on the submission queue (overflow → 503).
    pub queue_cap: usize,
    /// Queue depth that turns coalescing on.
    pub depth_hi: usize,
    /// Queue depth that turns coalescing off.
    pub depth_lo: usize,
    /// How long a coalescing, non-full batch waits for one more arrival
    /// before stepping anyway.
    pub coalesce_wait_ms: u64,
}

impl Default for BatchServerConfig {
    fn default() -> Self {
        BatchServerConfig {
            queue_cap: 64,
            depth_hi: 2,
            depth_lo: 0,
            coalesce_wait_ms: 2,
        }
    }
}

/// Submission failures, in order of decreasing client fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full — 503, retry.
    QueueFull,
    /// The KV block pool cannot cover this request even alone — 429.
    PoolExhausted,
    /// The runner is shut down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue full"),
            SubmitError::PoolExhausted => write!(f, "KV block pool exhausted"),
            SubmitError::Closed => write!(f, "batch runner is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A finished batched generation.
#[derive(Debug, Clone)]
pub struct BatchOut {
    /// The generated recipe.
    pub recipe: GeneratedRecipe,
    /// End-to-end latency (enqueue → finished), milliseconds.
    pub latency_ms: f64,
}

struct BatchJob {
    ingredients: Vec<String>,
    seed: Option<u64>,
    reply: SyncSender<Result<BatchOut, SubmitError>>,
    enqueued_ns: u64,
    /// The request's trace, if the HTTP layer attached one.
    trace: Option<obs::reqtrace::TraceHandle>,
    /// Admission attempts so far (bumped on head-of-line requeues).
    attempts: u32,
}

struct InFlight {
    reply: SyncSender<Result<BatchOut, SubmitError>>,
    enqueued_ns: u64,
}

/// The continuous-batching serving loop: one thread, one model replica,
/// many concurrent requests.
pub struct BatchRunner {
    tx: Option<SyncSender<BatchJob>>,
    handle: Option<std::thread::JoinHandle<()>>,
    model_name: String,
    /// Submitted-but-not-yet-admitted count, shared with the runner
    /// thread. The queue bound is enforced here (the runner drains the
    /// channel eagerly, so channel capacity alone can't backpressure).
    depth: Arc<AtomicU64>,
    queue_cap: u64,
}

impl BatchRunner {
    /// Spawn the runner thread; blocks until the backend is built and
    /// reports its model name.
    ///
    /// # Errors
    /// The OS error if the thread cannot spawn, or `InvalidData` if the
    /// backend factory panics during construction.
    pub fn start(cfg: BatchServerConfig, factory: StepBackendFactory) -> std::io::Result<Self> {
        let queue_cap = cfg.queue_cap.max(1) as u64;
        let (tx, rx) = sync_channel::<BatchJob>(cfg.queue_cap.max(1));
        let (name_tx, name_rx) = sync_channel::<String>(1);
        let depth = Arc::new(AtomicU64::new(0));
        let depth_for_runner = Arc::clone(&depth);
        let handle = std::thread::Builder::new()
            .name("batch-runner".into())
            .spawn(move || {
                let mut backend = factory();
                let _ = name_tx.send(backend.model_name());
                run_loop(&rx, backend.as_mut(), &cfg, &depth_for_runner);
            })?;
        let model_name = name_rx.recv().map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "batch backend failed to construct",
            )
        })?;
        Ok(BatchRunner {
            tx: Some(tx),
            handle: Some(handle),
            model_name,
            depth,
            queue_cap,
        })
    }

    /// The served model's card name.
    pub fn model_name(&self) -> &str {
        &self.model_name
    }

    /// Submit a request and block until it finishes (the HTTP handler's
    /// calling convention). Rejects immediately when the queue is full.
    pub fn submit(
        &self,
        ingredients: Vec<String>,
        seed: Option<u64>,
    ) -> Result<BatchOut, SubmitError> {
        self.submit_traced(ingredients, seed, None)
    }

    /// [`BatchRunner::submit`] carrying the request's trace. The caller
    /// records `Enqueue` before submitting (the serving handlers do);
    /// this method records queue-full rejections, and the runner thread
    /// records admission, requeues and every decode step downstream.
    pub fn submit_traced(
        &self,
        ingredients: Vec<String>,
        seed: Option<u64>,
        trace: Option<obs::reqtrace::TraceHandle>,
    ) -> Result<BatchOut, SubmitError> {
        let tx = self.tx.as_ref().ok_or(SubmitError::Closed)?;
        // Exact backpressure: claim a queue slot before sending, give it
        // back on rejection (the runner gives it back at admission).
        let prev = self.depth.fetch_add(1, Ordering::SeqCst);
        if prev >= self.queue_cap {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            obs::static_counter!("serving_queue_rejections_total").inc();
            if let Some(t) = &trace {
                t.record(obs::reqtrace::Phase::Reject, 0, 0);
            }
            return Err(SubmitError::QueueFull);
        }
        obs::static_gauge!("serving_queue_depth").add(1.0);
        let (reply_tx, reply_rx) = sync_channel(1);
        let send = tx.send(BatchJob {
            ingredients,
            seed,
            reply: reply_tx,
            enqueued_ns: obs::Clock::now().at_ns(),
            trace,
            attempts: 0,
        });
        if send.is_err() {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            obs::static_gauge!("serving_queue_depth").add(-1.0);
            return Err(SubmitError::Closed);
        }
        match reply_rx.recv() {
            Ok(out) => out,
            Err(_) => Err(SubmitError::Closed),
        }
    }

    /// Shut down: close the queue and join the runner (it drains active
    /// sequences first so no accepted request is dropped).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BatchRunner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The runner loop, factored out so tests can drive it with a scripted
/// backend on a plain channel.
fn run_loop(
    rx: &Receiver<BatchJob>,
    backend: &mut dyn StepBackend,
    cfg: &BatchServerConfig,
    depth: &AtomicU64,
) {
    let mut scheduler = Scheduler::new(cfg.depth_hi, cfg.depth_lo);
    // Per-model twins of the aggregate histograms, resolved once before
    // the step loop (never in the hot path).
    let model_label = obs::metrics::label_value(&backend.model_name());
    let labeled_latency =
        obs::metrics::histogram(&format!("generate_latency_ns{{model=\"{model_label}\"}}"));
    let labeled_queue_wait =
        obs::metrics::histogram(&format!("request_queue_wait_ns{{model=\"{model_label}\"}}"));
    let mut waiting: VecDeque<BatchJob> = VecDeque::new();
    let mut inflight: BTreeMap<u64, InFlight> = BTreeMap::new();
    let mut disconnected = false;

    loop {
        // Pull in everything that arrived since the last step without
        // blocking — admissions happen *between* token steps.
        loop {
            match rx.try_recv() {
                Ok(job) => waiting.push_back(job),
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        // Fully idle: block until work arrives (or shut down, having
        // drained every accepted request).
        if waiting.is_empty() && backend.active() == 0 {
            if disconnected {
                break;
            }
            match rx.recv() {
                Ok(job) => waiting.push_back(job),
                Err(_) => {
                    disconnected = true;
                    continue;
                }
            }
        }

        scheduler.observe_depth(waiting.len());

        // Admit FIFO up to the backend's free slots. Only this thread
        // admits, so composition (and therefore output bytes — see the
        // determinism contract) is reproducible from arrival order.
        let quota = scheduler.admit_quota(backend.free_slots(), waiting.len());
        for _ in 0..quota {
            let Some(mut job) = waiting.pop_front() else { break };
            let meta = obs::reqtrace::TraceMeta {
                enqueued_ns: job.enqueued_ns,
                trace: job.trace.clone(),
            };
            match backend.admit_traced(&job.ingredients, job.seed, meta) {
                AdmitOutcome::Admitted(id) => {
                    depth.fetch_sub(1, Ordering::SeqCst);
                    obs::static_gauge!("serving_queue_depth").add(-1.0);
                    let wait_ns = obs::Clock::now().at_ns().saturating_sub(job.enqueued_ns);
                    obs::static_histogram!("serving_queue_wait_ns").observe(wait_ns);
                    obs::static_histogram!("request_queue_wait_ns").observe(wait_ns);
                    labeled_queue_wait.observe(wait_ns);
                    inflight.insert(
                        id,
                        InFlight {
                            reply: job.reply,
                            enqueued_ns: job.enqueued_ns,
                        },
                    );
                }
                AdmitOutcome::PoolExhausted if backend.active() > 0 => {
                    // Transient: blocks are held by in-flight requests.
                    // Head-of-line wait for retirements instead of a
                    // spurious 429.
                    job.attempts += 1;
                    if let Some(t) = &job.trace {
                        t.record(obs::reqtrace::Phase::Requeue, job.attempts, 0);
                    }
                    waiting.push_front(job);
                    break;
                }
                AdmitOutcome::PoolExhausted => {
                    // Even an idle engine cannot cover this request.
                    depth.fetch_sub(1, Ordering::SeqCst);
                    obs::static_gauge!("serving_queue_depth").add(-1.0);
                    obs::static_counter!("serving_pool_rejections_total").inc();
                    if let Some(t) = &job.trace {
                        t.record(obs::reqtrace::Phase::Reject, 0, 0);
                    }
                    let _ = job.reply.send(Err(SubmitError::PoolExhausted));
                }
                AdmitOutcome::BatchFull => {
                    // Slot accounting raced a retirement; retry next step.
                    job.attempts += 1;
                    if let Some(t) = &job.trace {
                        t.record(obs::reqtrace::Phase::Requeue, job.attempts, 0);
                    }
                    waiting.push_front(job);
                    break;
                }
            }
        }

        // Under load, give a non-full batch one short chance to fill
        // before paying a step for it.
        if !disconnected && scheduler.should_coalesce_wait(backend.free_slots(), waiting.len()) {
            match rx.recv_timeout(Duration::from_millis(cfg.coalesce_wait_ms)) {
                Ok(job) => {
                    waiting.push_back(job);
                    continue; // admit it before stepping
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => disconnected = true,
            }
        }

        if backend.active() == 0 {
            continue;
        }
        let step_start = obs::Clock::now();
        let finished = backend.step();
        obs::static_histogram!("serving_exec_ns").observe(step_start.elapsed_ns());
        for (id, recipe) in finished {
            if let Some(fl) = inflight.remove(&id) {
                let latency_ns = obs::Clock::now().at_ns().saturating_sub(fl.enqueued_ns);
                obs::static_histogram!("generate_latency_ns").observe(latency_ns);
                labeled_latency.observe(latency_ns);
                let _ = fl.reply.send(Ok(BatchOut {
                    recipe,
                    latency_ms: latency_ns as f64 / 1e6,
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn recipe(tag: &str) -> GeneratedRecipe {
        GeneratedRecipe {
            title: tag.to_string(),
            ingredients: vec![],
            instructions: vec![],
            well_formed: true,
        }
    }

    /// A scripted backend: each admitted request finishes after a fixed
    /// number of steps; capacity and pool size are programmable.
    struct FakeBackend {
        max_batch: usize,
        pool_tokens: usize,
        steps_to_finish: usize,
        /// Simulated per-step decode time, so tests can force requests
        /// to overlap in wall-clock time.
        step_delay: Duration,
        active: Vec<(u64, usize)>, // (id, steps remaining)
        next_id: u64,
        log: Arc<Mutex<Vec<String>>>,
        batch_sizes: Arc<Mutex<Vec<usize>>>,
    }

    impl FakeBackend {
        fn new(max_batch: usize, pool_tokens: usize, steps_to_finish: usize) -> Self {
            FakeBackend {
                max_batch,
                pool_tokens,
                steps_to_finish,
                step_delay: Duration::ZERO,
                active: Vec::new(),
                next_id: 0,
                log: Arc::new(Mutex::new(Vec::new())),
                batch_sizes: Arc::new(Mutex::new(Vec::new())),
            }
        }
    }

    impl StepBackend for FakeBackend {
        fn model_name(&self) -> String {
            "fake".into()
        }

        fn admit(&mut self, ingredients: &[String], _seed: Option<u64>) -> AdmitOutcome {
            if self.active.len() >= self.max_batch {
                return AdmitOutcome::BatchFull;
            }
            // Model the worst-case reservation: one "token" per
            // ingredient, drawn from a fixed pool.
            let need = ingredients.len();
            let used: usize = self.active.iter().map(|_| 1).sum();
            if need + used > self.pool_tokens {
                return AdmitOutcome::PoolExhausted;
            }
            let id = self.next_id;
            self.next_id += 1;
            self.active.push((id, self.steps_to_finish));
            self.log.lock().unwrap().push(format!("admit {id}"));
            AdmitOutcome::Admitted(id)
        }

        fn step(&mut self) -> Vec<(u64, GeneratedRecipe)> {
            self.batch_sizes.lock().unwrap().push(self.active.len());
            if !self.step_delay.is_zero() {
                std::thread::sleep(self.step_delay);
            }
            let mut done = Vec::new();
            self.active.retain_mut(|(id, left)| {
                *left -= 1;
                if *left == 0 {
                    done.push((*id, recipe(&format!("r{id}"))));
                    false
                } else {
                    true
                }
            });
            done
        }

        fn active(&self) -> usize {
            self.active.len()
        }

        fn free_slots(&self) -> usize {
            self.max_batch - self.active.len()
        }
    }

    fn start_fake(
        cfg: BatchServerConfig,
        max_batch: usize,
        pool_tokens: usize,
        steps: usize,
        step_delay_ms: u64,
    ) -> (BatchRunner, Arc<Mutex<Vec<usize>>>) {
        let sizes = Arc::new(Mutex::new(Vec::new()));
        let sizes2 = Arc::clone(&sizes);
        let runner = BatchRunner::start(
            cfg,
            Arc::new(move |/* built in-thread */| {
                let mut b = FakeBackend::new(max_batch, pool_tokens, steps);
                b.step_delay = Duration::from_millis(step_delay_ms);
                b.batch_sizes = Arc::clone(&sizes2);
                Box::new(b) as Box<dyn StepBackend>
            }),
        )
        .unwrap();
        (runner, sizes)
    }

    #[test]
    fn scheduler_hysteresis_is_sticky() {
        let mut s = Scheduler::new(4, 1);
        assert!(!s.coalescing());
        s.observe_depth(3);
        assert!(!s.coalescing(), "below hi stays off");
        s.observe_depth(4);
        assert!(s.coalescing(), "at hi turns on");
        s.observe_depth(2);
        assert!(s.coalescing(), "inside the band stays on (sticky)");
        s.observe_depth(1);
        assert!(!s.coalescing(), "at lo turns off");
        s.observe_depth(3);
        assert!(!s.coalescing(), "inside the band stays off (sticky)");
    }

    #[test]
    fn scheduler_quota_and_wait_policy() {
        let mut s = Scheduler::new(2, 0);
        assert_eq!(s.admit_quota(3, 5), 3, "capped by free slots");
        assert_eq!(s.admit_quota(8, 2), 2, "capped by waiting");
        assert!(!s.should_coalesce_wait(3, 0), "no wait when not coalescing");
        s.observe_depth(2);
        assert!(s.should_coalesce_wait(3, 0));
        assert!(!s.should_coalesce_wait(0, 0), "full batch never waits");
        assert!(
            !s.should_coalesce_wait(3, 1),
            "waiting work is admitted, not waited on"
        );
    }

    #[test]
    fn single_request_completes() {
        let (runner, _) = start_fake(BatchServerConfig::default(), 4, 100, 3, 0);
        let out = runner.submit(vec!["flour".into()], Some(1)).unwrap();
        assert_eq!(out.recipe.title, "r0");
        assert!(out.latency_ms >= 0.0);
        runner.stop();
    }

    #[test]
    fn concurrent_requests_coalesce_into_batches() {
        // Slow finishes (64 steps) so all 6 submissions overlap.
        let (runner, sizes) = start_fake(BatchServerConfig::default(), 8, 100, 64, 1);
        let runner = Arc::new(runner);
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let r = Arc::clone(&runner);
                std::thread::spawn(move || r.submit(vec![format!("ing{i}")], Some(i)).unwrap())
            })
            .collect();
        let mut titles: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().unwrap().recipe.title)
            .collect();
        titles.sort();
        assert_eq!(titles.len(), 6);
        let max_batch = *sizes.lock().unwrap().iter().max().unwrap();
        assert!(
            max_batch >= 2,
            "overlapping requests never shared a step (max batch {max_batch})"
        );
    }

    #[test]
    fn mid_decode_arrival_joins_the_running_batch() {
        let (runner, sizes) = start_fake(BatchServerConfig::default(), 4, 100, 200, 1);
        let runner = Arc::new(runner);
        let r1 = Arc::clone(&runner);
        let h1 = std::thread::spawn(move || r1.submit(vec!["a".into()], Some(1)).unwrap());
        // Let the first request start decoding alone…
        std::thread::sleep(Duration::from_millis(20));
        let r2 = Arc::clone(&runner);
        let h2 = std::thread::spawn(move || r2.submit(vec!["b".into()], Some(2)).unwrap());
        h1.join().unwrap();
        h2.join().unwrap();
        let sizes = sizes.lock().unwrap();
        assert!(sizes.contains(&1), "first request ran solo initially");
        assert!(sizes.contains(&2), "second request joined mid-decode");
    }

    #[test]
    fn finish_mid_step_frees_the_slot_for_the_queue() {
        // Capacity 1: the second request can only run after the first
        // retires, admitted by the same loop without external nudging.
        let (runner, _) = start_fake(BatchServerConfig::default(), 1, 100, 3, 0);
        let runner = Arc::new(runner);
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let r = Arc::clone(&runner);
                std::thread::spawn(move || r.submit(vec![format!("x{i}")], Some(i)).unwrap())
            })
            .collect();
        let mut titles: Vec<String> = handles
            .into_iter()
            .map(|h| h.join().unwrap().recipe.title)
            .collect();
        titles.sort();
        assert_eq!(titles, vec!["r0", "r1", "r2"]);
    }

    #[test]
    fn drains_queue_to_empty_and_idles() {
        let (runner, sizes) = start_fake(BatchServerConfig::default(), 8, 100, 2, 0);
        for i in 0..5 {
            runner.submit(vec![format!("i{i}")], Some(i)).unwrap();
        }
        // All finished; the runner is blocked idle (no busy spinning):
        // step count is bounded by work actually done.
        let steps = sizes.lock().unwrap().len();
        assert!(steps <= 5 * 2, "idle runner kept stepping ({steps} steps)");
        runner.stop();
    }

    #[test]
    fn pool_exhausted_maps_to_submit_error() {
        // Pool of 2 "tokens": a 3-ingredient request can never fit.
        let (runner, _) = start_fake(BatchServerConfig::default(), 4, 2, 2, 0);
        let err = runner
            .submit(vec!["a".into(), "b".into(), "c".into()], None)
            .unwrap_err();
        assert_eq!(err, SubmitError::PoolExhausted);
        // The runner survives rejection and still serves fitting work.
        let out = runner.submit(vec!["a".into()], Some(9)).unwrap();
        assert_eq!(out.recipe.title, "r0");
        runner.stop();
    }

    #[test]
    fn overflow_queue_rejects_with_queue_full() {
        let cfg = BatchServerConfig {
            queue_cap: 1,
            ..BatchServerConfig::default()
        };
        // Capacity-1 backend with slow requests keeps the runner busy;
        // the queue then holds 1 and the next submit bounces.
        let (runner, sizes) = start_fake(cfg, 1, 100, 500, 1);
        let runner = Arc::new(runner);
        let r1 = Arc::clone(&runner);
        let bg1 = std::thread::spawn(move || {
            let _ = r1.submit(vec!["slow0".into()], Some(0));
        });
        // Wait until the first request is *admitted* (a step recorded),
        // so it occupies the backend rather than the queue slot.
        while sizes.lock().unwrap().is_empty() {
            std::thread::yield_now();
        }
        let r2 = Arc::clone(&runner);
        let bg2 = std::thread::spawn(move || {
            let _ = r2.submit(vec!["slow1".into()], Some(1));
        });
        // Give the second submission time to occupy the single queue
        // slot (it cannot be admitted for ~500ms).
        std::thread::sleep(Duration::from_millis(50));
        let err = runner.submit(vec!["c".into()], None).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull);
        // The queued requests still complete.
        bg1.join().unwrap();
        bg2.join().unwrap();
    }

    #[test]
    fn traced_submit_threads_the_trace_through() {
        let (runner, _) = start_fake(BatchServerConfig::default(), 4, 100, 3, 0);
        let trace = obs::reqtrace::begin();
        // The serving handler records Enqueue before submitting.
        trace.record(obs::reqtrace::Phase::Enqueue, 0, 0);
        let out = runner
            .submit_traced(vec!["flour".into()], Some(1), Some(trace.clone()))
            .unwrap();
        assert_eq!(out.recipe.title, "r0");
        let kinds: Vec<_> = trace.phases().iter().map(|p| p.phase).collect();
        assert_eq!(
            kinds,
            vec![obs::reqtrace::Phase::Accept, obs::reqtrace::Phase::Enqueue],
            "FakeBackend's default admit_traced must stay untraced"
        );
        runner.stop();
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let (runner, _) = start_fake(BatchServerConfig::default(), 4, 100, 10, 1);
        let runner = Arc::new(runner);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let r = Arc::clone(&runner);
                std::thread::spawn(move || r.submit(vec![format!("d{i}")], Some(i)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        for h in handles {
            assert!(h.join().unwrap().is_ok(), "accepted request dropped");
        }
    }
}

//! The model worker pool.
//!
//! The paper scales its dockerized backend by replication ("if load
//! increase then developer only need to replicate the docker"). The Rust
//! equivalent: each worker thread owns a complete backend replica
//! (models are not `Send`-shareable — they hold `Rc` autograd handles —
//! so replication is also the natural ownership story), and requests flow
//! through a bounded `std::sync::mpsc` channel whose receiver is shared
//! across workers behind a mutex. Backpressure is explicit: a full
//! queue rejects immediately (the API maps it to 503), and a panicking
//! replica is rebuilt from the factory without taking down the pool.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Pool submission/communication errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The bounded queue is full (backpressure).
    QueueFull,
    /// The pool is shut down or the worker died before responding.
    Disconnected,
    /// The worker panicked while processing this job.
    WorkerPanicked(String),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::QueueFull => write!(f, "worker queue full"),
            PoolError::Disconnected => write!(f, "worker pool disconnected"),
            PoolError::WorkerPanicked(m) => write!(f, "worker panicked: {m}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// One queued request: the payload, where to send the result, and the
/// enqueue stamp for the `serving_queue_wait_ns` histogram.
struct Job<J, R> {
    payload: J,
    reply: SyncSender<Result<R, PoolError>>,
    enqueued_ns: u64,
}

/// A fixed-size pool of worker threads, each owning a replica built by
/// the factory.
pub struct WorkerPool<J: Send + 'static, R: Send + 'static> {
    tx: Option<SyncSender<Job<J, R>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl<J: Send + 'static, R: Send + 'static> WorkerPool<J, R> {
    /// Spawn `workers` threads. `factory(worker_index)` runs *inside*
    /// each thread to build its replica — a `FnMut(J) -> R` handler.
    /// `queue_cap` bounds the shared request queue.
    ///
    /// # Errors
    /// Returns the OS error if a worker thread cannot be spawned (threads
    /// spawned so far shut down cleanly when the pool is dropped).
    pub fn new<F, W>(workers: usize, queue_cap: usize, factory: F) -> std::io::Result<Self>
    where
        F: Fn(usize) -> W + Send + Sync + Clone + 'static,
        W: FnMut(J) -> R + 'static,
    {
        assert!(workers > 0, "need at least one worker");
        let (tx, rx) = sync_channel::<Job<J, R>>(queue_cap.max(1));
        // `std::sync::mpsc` receivers are single-consumer; sharing one
        // behind a mutex makes the channel effectively MPMC. The lock is
        // held only for the dequeue, never while a job runs.
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for wi in 0..workers {
            let rx: Arc<Mutex<Receiver<Job<J, R>>>> = Arc::clone(&rx);
            let factory = factory.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("model-worker-{wi}"))
                    .spawn(move || {
                        let mut replica = factory(wi);
                        loop {
                            let next = match rx.lock() {
                                Ok(guard) => guard.recv(),
                                Err(_) => break, // a holder panicked mid-dequeue
                            };
                            let Ok(job) = next else { break };
                            let dequeued = obs::Clock::now();
                            obs::static_gauge!("serving_queue_depth").add(-1.0);
                            obs::static_histogram!("serving_queue_wait_ns")
                                .observe(dequeued.at_ns().saturating_sub(job.enqueued_ns));
                            let Job { payload, reply, .. } = job;
                            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                replica(payload)
                            }));
                            obs::static_histogram!("serving_exec_ns")
                                .observe(dequeued.elapsed_ns());
                            match result {
                                Ok(r) => {
                                    let _ = reply.send(Ok(r));
                                }
                                Err(payload) => {
                                    let msg = panic_message(&*payload);
                                    let _ = reply.send(Err(PoolError::WorkerPanicked(msg)));
                                    // rebuild the replica after a panic
                                    replica = factory(wi);
                                }
                            }
                        }
                    })?,
            );
        }
        Ok(WorkerPool {
            tx: Some(tx),
            handles,
            workers,
        })
    }

    /// Number of worker replicas.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submit and wait. Rejects immediately when the queue is full.
    pub fn execute(&self, job: J) -> Result<R, PoolError> {
        let (reply_tx, reply_rx) = sync_channel(1);
        let tx = self.tx.as_ref().ok_or(PoolError::Disconnected)?;
        tx.try_send(Job {
            payload: job,
            reply: reply_tx,
            enqueued_ns: obs::Clock::now().at_ns(),
        })
        .map_err(|e| match e {
            TrySendError::Full(_) => {
                obs::static_counter!("serving_queue_rejections_total").inc();
                PoolError::QueueFull
            }
            TrySendError::Disconnected(_) => PoolError::Disconnected,
        })?;
        obs::static_gauge!("serving_queue_depth").add(1.0);
        reply_rx.recv().map_err(|_| PoolError::Disconnected)?
    }

    /// Drain and join all workers.
    pub fn shutdown(mut self) {
        self.tx.take(); // close the channel; workers exit their loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<J: Send + 'static, R: Send + 'static> Drop for WorkerPool<J, R> {
    fn drop(&mut self) {
        self.tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_jobs() {
        let pool: WorkerPool<u32, u32> = WorkerPool::new(2, 8, |_| |x: u32| x * 2).unwrap();
        assert_eq!(pool.execute(21), Ok(42));
        assert_eq!(pool.execute(5), Ok(10));
        pool.shutdown();
    }

    #[test]
    fn factory_runs_once_per_worker() {
        let built = Arc::new(AtomicUsize::new(0));
        let b2 = Arc::clone(&built);
        let pool: WorkerPool<(), ()> = WorkerPool::new(3, 4, move |_| {
            b2.fetch_add(1, Ordering::SeqCst);
            |_: ()| {}
        })
        .unwrap();
        // give threads a moment to construct replicas
        for _ in 0..3 {
            pool.execute(()).unwrap();
        }
        assert_eq!(built.load(Ordering::SeqCst), 3);
        pool.shutdown();
    }

    #[test]
    fn parallel_throughput() {
        // 4 workers with 20ms jobs: 8 jobs should take ~40ms, not ~160ms.
        let pool: Arc<WorkerPool<(), ()>> = Arc::new(
            WorkerPool::new(4, 16, |_| {
                |_: ()| std::thread::sleep(std::time::Duration::from_millis(20))
            })
            .unwrap(),
        );
        let start = obs::Clock::now();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = Arc::clone(&pool);
                std::thread::spawn(move || p.execute(()).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed_ms = start.elapsed_ns() / 1_000_000;
        assert!(
            elapsed_ms < 120,
            "took {elapsed_ms}ms — pool not parallel"
        );
    }

    #[test]
    fn panicking_job_reported_and_pool_survives() {
        let pool: WorkerPool<bool, u32> = WorkerPool::new(1, 4, |_| {
            |explode: bool| {
                if explode {
                    panic!("kaboom");
                }
                7
            }
        })
        .unwrap();
        match pool.execute(true) {
            Err(PoolError::WorkerPanicked(msg)) => assert!(msg.contains("kaboom")),
            other => panic!("expected panic error, got {other:?}"),
        }
        // replica was rebuilt; pool still works
        assert_eq!(pool.execute(false), Ok(7));
        pool.shutdown();
    }

    #[test]
    fn queue_full_rejects() {
        // 1 worker busy for a while + tiny queue ⇒ new submissions bounce.
        let pool: Arc<WorkerPool<(), ()>> = Arc::new(
            WorkerPool::new(1, 1, |_| {
                |_: ()| std::thread::sleep(std::time::Duration::from_millis(150))
            })
            .unwrap(),
        );
        let p1 = Arc::clone(&pool);
        let bg = std::thread::spawn(move || {
            let _ = p1.execute(()); // occupies the worker
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let p2 = Arc::clone(&pool);
        let bg2 = std::thread::spawn(move || {
            let _ = p2.execute(()); // occupies the queue slot
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let res = pool.execute(());
        assert_eq!(res, Err(PoolError::QueueFull));
        bg.join().unwrap();
        bg2.join().unwrap();
    }

    #[test]
    fn worker_index_passed_to_factory() {
        let pool: WorkerPool<(), usize> = WorkerPool::new(2, 4, |wi| move |_: ()| wi).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(pool.execute(()).unwrap());
        }
        assert!(seen.iter().all(|&w| w < 2));
        pool.shutdown();
    }
}

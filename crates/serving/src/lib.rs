//! # ratatouille-serving
//!
//! The Ratatouille web application (§VI of the paper), rebuilt in Rust:
//!
//! * [`http`] — an HTTP/1.1 server on `std::net::TcpListener`, written
//!   from scratch (no framework), with keep-alive-free request/response
//!   handling and graceful shutdown;
//! * [`json`] — a hand-rolled JSON parser/serializer (the offline crate
//!   whitelist has `serde` but not `serde_json`; a recipe API needs JSON);
//! * [`router`] — method + path routing;
//! * [`worker`] — the model worker pool. The paper decouples the React
//!   frontend from the Flask backend with "microservices … if load
//!   increases then developer only need to replicate the docker"; here
//!   each worker thread owns a full model replica and requests flow over
//!   a bounded crossbeam channel, so throughput scales by adding workers
//!   (benchmarked in `serving_throughput`);
//! * [`batch`] — the continuous-batching alternative to the pool: one
//!   model replica whose [`batch::BatchRunner`] coalesces queued
//!   requests into a single multi-sequence decode, admitting and
//!   retiring per token step (driven by the `serving_queue_depth`
//!   signal with hysteresis);
//! * [`api`] — the generate/health/models endpoints over a backend trait;
//! * [`frontend`] — the embedded single-page UI (Fig. 4);
//! * [`client`] — a tiny blocking HTTP client for tests, examples and the
//!   CLI.
#![warn(missing_docs)]


pub mod api;
pub mod batch;
pub mod client;
pub mod frontend;
pub mod http;
pub mod json;
pub mod router;
pub mod worker;

pub use api::{ApiServer, ApiStats, GeneratedRecipe, RecipeBackend};
pub use batch::{
    AdmitOutcome, BatchOut, BatchRunner, BatchServerConfig, Scheduler, StepBackend,
    StepBackendFactory, SubmitError,
};
pub use http::{HttpServer, Request, Response, StatusCode};
pub use json::Json;
pub use router::Router;
pub use worker::WorkerPool;

//! The embedded single-page frontend (Fig. 4 of the paper: "Website
//! interface to choose ingredients and generate recipe").
//!
//! The paper's deployment uses a ReactJS frontend decoupled from a Flask
//! backend; ours is a dependency-free HTML/JS page speaking to the same
//! `POST /api/generate` contract, embedded in the binary so the whole
//! application ships as one executable.

/// The SPA, served at `GET /`.
pub const INDEX_HTML: &str = r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Ratatouille — Novel Recipe Generation</title>
<style>
  :root { --accent: #c0392b; --bg: #fdf6ee; --card: #ffffff; }
  body { font-family: Georgia, serif; background: var(--bg); margin: 0; color: #2c2c2c; }
  header { background: var(--accent); color: white; padding: 1.2rem 2rem; }
  header h1 { margin: 0; font-size: 1.6rem; }
  header p { margin: 0.3rem 0 0; opacity: 0.9; font-size: 0.95rem; }
  main { max-width: 760px; margin: 2rem auto; padding: 0 1rem; }
  .card { background: var(--card); border-radius: 10px; padding: 1.5rem;
          box-shadow: 0 2px 8px rgba(0,0,0,0.08); margin-bottom: 1.5rem; }
  .chips { display: flex; flex-wrap: wrap; gap: 0.5rem; margin: 0.8rem 0; }
  .chip { background: #f3e3d3; border-radius: 16px; padding: 0.25rem 0.8rem;
          cursor: pointer; user-select: none; border: 1px solid #e0c9ae; }
  .chip.selected { background: var(--accent); color: white; border-color: var(--accent); }
  input[type=text] { width: 60%; padding: 0.5rem; border: 1px solid #ccc; border-radius: 6px; }
  button { background: var(--accent); color: white; border: 0; border-radius: 6px;
           padding: 0.6rem 1.4rem; font-size: 1rem; cursor: pointer; }
  button:disabled { opacity: 0.5; cursor: wait; }
  #result h2 { color: var(--accent); margin-top: 0; text-transform: capitalize; }
  #result ul, #result ol { line-height: 1.6; }
  .meta { color: #777; font-size: 0.85rem; }
  .error { color: #b00020; }
</style>
</head>
<body>
<header>
  <h1>Ratatouille</h1>
  <p>A tool for novel recipe generation — pick ingredients, get a recipe.</p>
</header>
<main>
  <div class="card">
    <strong>Choose ingredients</strong>
    <div class="chips" id="chips"></div>
    <input type="text" id="custom" placeholder="add your own (e.g. saffron)">
    <button id="add">Add</button>
    <p></p>
    <button id="generate">Generate recipe</button>
    <span class="meta" id="status"></span>
  </div>
  <div class="card" id="result" hidden>
    <h2 id="title"></h2>
    <strong>Ingredients</strong>
    <ul id="ingredients"></ul>
    <strong>Instructions</strong>
    <ol id="instructions"></ol>
    <p class="meta" id="modelinfo"></p>
  </div>
</main>
<script>
const STARTERS = ["chicken","onion","garlic","tomato","rice","flour","butter",
  "egg","potato","carrot","ginger","soy sauce","lentils","basil","lemon"];
const selected = new Set();
const chips = document.getElementById("chips");
function addChip(name) {
  const el = document.createElement("span");
  el.className = "chip"; el.textContent = name;
  el.onclick = () => {
    if (selected.has(name)) { selected.delete(name); el.classList.remove("selected"); }
    else { selected.add(name); el.classList.add("selected"); }
  };
  chips.appendChild(el);
}
STARTERS.forEach(addChip);
document.getElementById("add").onclick = () => {
  const v = document.getElementById("custom").value.trim().toLowerCase();
  if (v) { addChip(v); document.getElementById("custom").value = ""; }
};
document.getElementById("generate").onclick = async () => {
  const status = document.getElementById("status");
  const btn = document.getElementById("generate");
  if (selected.size === 0) { status.textContent = "pick at least one ingredient"; return; }
  btn.disabled = true; status.textContent = "cooking…";
  try {
    const res = await fetch("/api/generate", {
      method: "POST",
      headers: {"Content-Type": "application/json"},
      body: JSON.stringify({ingredients: [...selected]})
    });
    const data = await res.json();
    if (!res.ok) throw new Error(data.error || res.status);
    document.getElementById("result").hidden = false;
    document.getElementById("title").textContent = data.title;
    const ul = document.getElementById("ingredients"); ul.innerHTML = "";
    data.ingredients.forEach(i => { const li = document.createElement("li"); li.textContent = i; ul.appendChild(li); });
    const ol = document.getElementById("instructions"); ol.innerHTML = "";
    data.instructions.forEach(s => { const li = document.createElement("li"); li.textContent = s; ol.appendChild(li); });
    document.getElementById("modelinfo").textContent =
      `model: ${data.model} · ${data.latency_ms.toFixed(0)} ms · ${data.well_formed ? "well-formed" : "needs review"}`;
    status.textContent = "";
  } catch (e) {
    status.textContent = "error: " + e.message;
    status.className = "error";
  } finally {
    btn.disabled = false;
  }
};
</script>
</body>
</html>
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontend_mentions_required_elements() {
        assert!(INDEX_HTML.contains("Ratatouille"));
        assert!(INDEX_HTML.contains("/api/generate"));
        assert!(INDEX_HTML.contains("ingredients"));
        assert!(INDEX_HTML.contains("<script>"));
    }

    #[test]
    fn frontend_is_self_contained() {
        // no external asset loads — ships as one binary
        assert!(!INDEX_HTML.contains("http://"));
        assert!(!INDEX_HTML.contains("https://"));
        assert!(!INDEX_HTML.contains("src=\""));
    }
}

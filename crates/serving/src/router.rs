//! Method + path routing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::http::{Request, Response, StatusCode};

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Routes `(METHOD, /path)` pairs to handlers. Unknown paths get 404;
/// known paths with the wrong method get 405.
#[derive(Clone, Default)]
pub struct Router {
    routes: HashMap<(String, String), Handler>,
    paths: Vec<String>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler.
    pub fn route<F>(mut self, method: &str, path: &str, handler: F) -> Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.routes.insert(
            (method.to_ascii_uppercase(), path.to_string()),
            Arc::new(handler),
        );
        if !self.paths.contains(&path.to_string()) {
            self.paths.push(path.to_string());
        }
        self
    }

    /// Dispatch a request. `OPTIONS` on any registered path answers the
    /// CORS preflight (the decoupled-frontend contract).
    pub fn dispatch(&self, req: &Request) -> Response {
        if let Some(h) = self.routes.get(&(req.method.clone(), req.path.clone())) {
            // Per-route hit counter. Cardinality is bounded by the set of
            // registered routes, so the dynamic registry lookup is safe;
            // unmatched paths are deliberately not labeled (unbounded).
            obs::metrics::counter(&format!(
                "http_route_hits_total{{route=\"{} {}\"}}",
                req.method, req.path
            ))
            .inc();
            return h(req);
        }
        if self.paths.contains(&req.path) {
            if req.method == "OPTIONS" {
                return Response::preflight();
            }
            return Response::text(StatusCode::MethodNotAllowed, "method not allowed");
        }
        Response::text(StatusCode::NotFound, "not found")
    }

    /// Registered paths (for the health endpoint's route listing).
    pub fn paths(&self) -> &[String] {
        &self.paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: String::new(),
            headers: vec![],
            body: vec![],
        }
    }

    #[test]
    fn dispatches_by_method_and_path() {
        let r = Router::new()
            .route("GET", "/a", |_| Response::text(StatusCode::Ok, "get-a"))
            .route("POST", "/a", |_| Response::text(StatusCode::Ok, "post-a"));
        assert_eq!(r.dispatch(&req("GET", "/a")).body, b"get-a");
        assert_eq!(r.dispatch(&req("POST", "/a")).body, b"post-a");
    }

    #[test]
    fn unknown_path_404() {
        let r = Router::new().route("GET", "/a", |_| Response::text(StatusCode::Ok, "x"));
        assert_eq!(r.dispatch(&req("GET", "/zzz")).status, StatusCode::NotFound);
    }

    #[test]
    fn wrong_method_405() {
        let r = Router::new().route("GET", "/a", |_| Response::text(StatusCode::Ok, "x"));
        assert_eq!(
            r.dispatch(&req("DELETE", "/a")).status,
            StatusCode::MethodNotAllowed
        );
    }

    #[test]
    fn options_preflight_on_registered_paths() {
        let r = Router::new().route("POST", "/api/generate", |_| {
            Response::text(StatusCode::Ok, "x")
        });
        let resp = r.dispatch(&req("OPTIONS", "/api/generate"));
        assert_eq!(resp.status, StatusCode::Ok);
        let wire = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(wire.contains("Access-Control-Allow-Origin: *"));
        assert!(wire.contains("Access-Control-Allow-Methods"));
        // unknown path still 404s even for OPTIONS
        assert_eq!(
            r.dispatch(&req("OPTIONS", "/nope")).status,
            StatusCode::NotFound
        );
    }

    #[test]
    fn method_is_case_insensitive_at_registration() {
        let r = Router::new().route("get", "/a", |_| Response::text(StatusCode::Ok, "x"));
        assert_eq!(r.dispatch(&req("GET", "/a")).status, StatusCode::Ok);
    }
}

//! Method + path routing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::http::{Request, Response, StatusCode};

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Routes `(METHOD, /path)` pairs to handlers. Unknown paths get 404;
/// known paths with the wrong method get 405.
#[derive(Clone, Default)]
pub struct Router {
    routes: HashMap<(String, String), Handler>,
    /// Prefix-matched routes (`/debug/requests/<id>`), tried after exact
    /// matches, longest prefix first.
    prefix_routes: Vec<(String, String, Handler)>,
    paths: Vec<String>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler.
    pub fn route<F>(mut self, method: &str, path: &str, handler: F) -> Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.routes.insert(
            (method.to_ascii_uppercase(), path.to_string()),
            Arc::new(handler),
        );
        if !self.paths.contains(&path.to_string()) {
            self.paths.push(path.to_string());
        }
        self
    }

    /// Register a handler for every path starting with `prefix` (the
    /// handler parses the remainder itself, e.g. the `<id>` suffix of
    /// `/debug/requests/<id>`). Exact routes win over prefixes; among
    /// prefixes, the longest match wins.
    pub fn route_prefix<F>(mut self, method: &str, prefix: &str, handler: F) -> Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.prefix_routes.push((
            method.to_ascii_uppercase(),
            prefix.to_string(),
            Arc::new(handler),
        ));
        self.prefix_routes
            .sort_by(|a, b| b.1.len().cmp(&a.1.len()).then_with(|| a.1.cmp(&b.1)));
        self
    }

    /// Dispatch a request. `OPTIONS` on any registered path answers the
    /// CORS preflight (the decoupled-frontend contract).
    pub fn dispatch(&self, req: &Request) -> Response {
        if let Some(h) = self.routes.get(&(req.method.clone(), req.path.clone())) {
            // Per-route hit counter. Cardinality is bounded by the set of
            // registered routes, so the dynamic registry lookup is safe;
            // unmatched paths are deliberately not labeled (unbounded).
            obs::metrics::counter(&format!(
                "http_route_hits_total{{route=\"{} {}\"}}",
                req.method, req.path
            ))
            .inc();
            return h(req);
        }
        let mut prefix_hit = false;
        for (method, prefix, h) in &self.prefix_routes {
            if !req.path.starts_with(prefix.as_str()) {
                continue;
            }
            prefix_hit = true;
            if req.method == *method {
                // Label by the registered prefix, not the request path:
                // the suffix (`<id>`) is client-chosen and unbounded.
                obs::metrics::counter(&format!(
                    "http_route_hits_total{{route=\"{method} {prefix}*\"}}"
                ))
                .inc();
                return h(req);
            }
        }
        if self.paths.contains(&req.path) || prefix_hit {
            if req.method == "OPTIONS" {
                return Response::preflight();
            }
            return Response::text(StatusCode::MethodNotAllowed, "method not allowed");
        }
        Response::text(StatusCode::NotFound, "not found")
    }

    /// Registered paths (for the health endpoint's route listing).
    pub fn paths(&self) -> &[String] {
        &self.paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            query: String::new(),
            headers: vec![],
            body: vec![],
            trace: None,
        }
    }

    #[test]
    fn dispatches_by_method_and_path() {
        let r = Router::new()
            .route("GET", "/a", |_| Response::text(StatusCode::Ok, "get-a"))
            .route("POST", "/a", |_| Response::text(StatusCode::Ok, "post-a"));
        assert_eq!(r.dispatch(&req("GET", "/a")).body, b"get-a");
        assert_eq!(r.dispatch(&req("POST", "/a")).body, b"post-a");
    }

    #[test]
    fn unknown_path_404() {
        let r = Router::new().route("GET", "/a", |_| Response::text(StatusCode::Ok, "x"));
        assert_eq!(r.dispatch(&req("GET", "/zzz")).status, StatusCode::NotFound);
    }

    #[test]
    fn wrong_method_405() {
        let r = Router::new().route("GET", "/a", |_| Response::text(StatusCode::Ok, "x"));
        assert_eq!(
            r.dispatch(&req("DELETE", "/a")).status,
            StatusCode::MethodNotAllowed
        );
    }

    #[test]
    fn options_preflight_on_registered_paths() {
        let r = Router::new().route("POST", "/api/generate", |_| {
            Response::text(StatusCode::Ok, "x")
        });
        let resp = r.dispatch(&req("OPTIONS", "/api/generate"));
        assert_eq!(resp.status, StatusCode::Ok);
        let wire = String::from_utf8(resp.to_bytes()).unwrap();
        assert!(wire.contains("Access-Control-Allow-Origin: *"));
        assert!(wire.contains("Access-Control-Allow-Methods"));
        // unknown path still 404s even for OPTIONS
        assert_eq!(
            r.dispatch(&req("OPTIONS", "/nope")).status,
            StatusCode::NotFound
        );
    }

    #[test]
    fn method_is_case_insensitive_at_registration() {
        let r = Router::new().route("get", "/a", |_| Response::text(StatusCode::Ok, "x"));
        assert_eq!(r.dispatch(&req("GET", "/a")).status, StatusCode::Ok);
    }

    #[test]
    fn prefix_route_matches_suffixed_paths() {
        let r = Router::new()
            .route("GET", "/debug/requests", |_| {
                Response::text(StatusCode::Ok, "list")
            })
            .route_prefix("GET", "/debug/requests/", |req| {
                Response::text(StatusCode::Ok, format!("one:{}", req.path))
            });
        // Exact route wins for the bare path…
        assert_eq!(r.dispatch(&req("GET", "/debug/requests")).body, b"list");
        // …the prefix route takes any suffix…
        assert_eq!(
            r.dispatch(&req("GET", "/debug/requests/17")).body,
            b"one:/debug/requests/17"
        );
        // …wrong method on a prefix match is 405, not 404…
        assert_eq!(
            r.dispatch(&req("POST", "/debug/requests/17")).status,
            StatusCode::MethodNotAllowed
        );
        // …and unrelated paths still 404.
        assert_eq!(r.dispatch(&req("GET", "/debug/req")).status, StatusCode::NotFound);
    }
}

//! A small, total JSON implementation (RFC 8259 subset: no `\u` surrogate
//! pairs beyond the BMP are split, numbers are f64).
//!
//! Hand-rolled because the offline dependency whitelist includes `serde`
//! but not `serde_json`, and the web API needs wire JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use [`BTreeMap`] so serialization is
/// deterministic (stable key order).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object constructor from key/value pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Array of strings.
    pub fn string_array<S: AsRef<str>>(items: &[S]) -> Json {
        Json::Array(items.iter().map(|s| Json::string(s.as_ref())).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Bool payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Convenience: array of strings → `Vec<String>` (non-strings skipped).
    pub fn as_string_vec(&self) -> Vec<String> {
        self.as_array()
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// A JSON parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), JsonError> {
        // xlint: allow(transitive-panic-in-request-path): `pos` never exceeds `bytes.len()` — every advance is length-checked — so the range slice cannot panic
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_lit("null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.expect_lit("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_lit("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.bump(); // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.bump(); // {
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key string"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(map)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| (c as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?,
                        );
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    // re-assemble UTF-8 multibyte sequences
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(c);
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated utf-8"));
                        }
                        // xlint: allow(transitive-panic-in-request-path): `end > bytes.len()` returned an error on the previous line, so the slice is in bounds
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') {
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => write_escaped(f, s),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-3.25e2").unwrap(), Json::Number(-325.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::string("hi"));
    }

    #[test]
    fn parse_nested() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = Json::string("line1\nline2\t\"quoted\" \\slash 漢字");
        let printed = original.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), original);
    }

    #[test]
    fn unicode_escape_parses() {
        let v = Json::parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn deterministic_object_order() {
        let a = Json::object(vec![("z", Json::Number(1.0)), ("a", Json::Number(2.0))]);
        assert_eq!(a.to_string(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "tru", "\"unterminated", "{\"k\" 1}", "1 2", "{'k':1}",
            "[1,]", "nul", "\u{0001}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrip_structured() {
        let v = Json::object(vec![
            ("ingredients", Json::string_array(&["flour", "water"])),
            ("servings", Json::Number(4.0)),
            ("ok", Json::Bool(true)),
            ("note", Json::Null),
        ]);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("ingredients").unwrap().as_string_vec(), vec!["flour", "water"]);
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(Json::Number(4.0).to_string(), "4");
        assert_eq!(Json::Number(4.5).to_string(), "4.5");
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" \n\t{ \"a\" : [ ] } \r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 0);
    }
}

//! The lock-free metrics registry.
//!
//! Three metric kinds, all safe to hammer from any thread:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`;
//! * [`Gauge`] — an `f64` (stored as bits in an `AtomicU64`) that can be
//!   set or adjusted;
//! * [`Histogram`] — 256 log-linear buckets of `AtomicU64` (16 exact
//!   buckets for values 0–15, then 4 linear sub-buckets per power of
//!   two), plus sum and count, from which p50/p90/p99 snapshots are
//!   derived.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a mutex once per
//! unique name and hands back an `Arc` handle; the *observation* path is
//! pure atomics. Hot call sites should cache the handle — the
//! [`static_counter!`](crate::static_counter),
//! [`static_gauge!`](crate::static_gauge) and
//! [`static_histogram!`](crate::static_histogram) macros do that with a
//! per-call-site `OnceLock`.
//!
//! Names follow Prometheus conventions and may carry a fixed label set
//! inline: `http_requests_total{class="2xx"}` registers an independent
//! series whose exposition groups under the `http_requests_total` family.
//! Keep label values low-cardinality and derived from registered routes /
//! status classes, never from request payloads.
//!
//! [`render_prometheus`] produces the text exposition format (served at
//! `GET /metrics`); [`snapshot_all`] returns typed snapshots in
//! deterministic (sorted-name) order for tests and benches.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An `f64` gauge (last-write-wins set, CAS-loop add).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adjust the gauge by `d` (atomically, via compare-exchange).
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets (see [`bucket_index`]).
const BUCKETS: usize = 256;

/// Map a sample to its log-linear bucket: values 0–15 get exact buckets;
/// above that, each power-of-two octave is split into 4 linear
/// sub-buckets (relative resolution ≤ 25% across the full `u64` range).
fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= 4
    let sub = (v >> (msb - 2)) & 3;
    (16 + (msb - 4) * 4 + sub) as usize
}

/// Inclusive lower bound of bucket `idx`.
fn bucket_lower(idx: usize) -> u64 {
    if idx < 16 {
        return idx as u64;
    }
    let o = 4 + (idx - 16) as u64 / 4;
    let sub = (idx - 16) as u64 % 4;
    (1u64 << o) + sub * (1u64 << (o - 2))
}

/// Inclusive upper bound of bucket `idx`.
fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(idx + 1) - 1
    }
}

/// A log-linear-bucket histogram of `u64` samples (typically ns).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram {{ count: {}, sum: {}, p50: {}, p99: {} }}",
            s.count, s.sum, s.p50, s.p99
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples observed.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Median (bucket upper bound containing the 50th percentile).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples observed so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples observed so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// `q`-th fraction of samples (0 when empty). Error is bounded by the
    /// bucket's ≤ 25% relative width.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(idx);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Count/sum/p50/p90/p99 in one (racy-but-consistent-enough) read.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn get_or_register(name: &str, make: impl FnOnce() -> Metric) -> Metric {
    let mut reg = match registry().lock() {
        Ok(g) => g,
        // A panic while holding the registry lock cannot corrupt the map
        // (all mutations are single inserts); keep serving metrics.
        Err(poisoned) => poisoned.into_inner(),
    };
    reg.entry(name.to_string()).or_insert_with(make).clone()
}

/// Sanitize a display name into a Prometheus label value: lowercase
/// alphanumerics pass through, everything else collapses to `-` (runs
/// collapse to one, edges trimmed). `"GPT-2 medium [int8]"` becomes
/// `"gpt-2-medium-int8"`. Used to build inline-label twins like
/// `generate_latency_ns{model="distilgpt2"}` from model card names.
pub fn label_value(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// Get or register the counter `name`. Panics if `name` is already
/// registered as a different metric kind (a programming error).
pub fn counter(name: &str) -> Arc<Counter> {
    match get_or_register(name, || Metric::Counter(Arc::new(Counter::default()))) {
        Metric::Counter(c) => c,
        // xlint: allow(transitive-panic-in-request-path): a kind mismatch is a compile-time-class programming error; any test touching the metric trips it immediately
        other => panic!("metric `{name}` already registered as {}", other.kind()),
    }
}

/// Get or register the gauge `name`. Panics on a kind mismatch.
pub fn gauge(name: &str) -> Arc<Gauge> {
    match get_or_register(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
        Metric::Gauge(g) => g,
        // xlint: allow(transitive-panic-in-request-path): a kind mismatch is a compile-time-class programming error; any test touching the metric trips it immediately
        other => panic!("metric `{name}` already registered as {}", other.kind()),
    }
}

/// Get or register the histogram `name`. Panics on a kind mismatch.
pub fn histogram(name: &str) -> Arc<Histogram> {
    match get_or_register(name, || Metric::Histogram(Arc::new(Histogram::default()))) {
        Metric::Histogram(h) => h,
        // xlint: allow(transitive-panic-in-request-path): a kind mismatch is a compile-time-class programming error; any test touching the metric trips it immediately
        other => panic!("metric `{name}` already registered as {}", other.kind()),
    }
}

/// Typed snapshot of one registered metric.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// Snapshot every registered metric in deterministic (sorted-name) order.
pub fn snapshot_all() -> Vec<(String, MetricSnapshot)> {
    let reg = match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    reg.iter()
        .map(|(name, m)| {
            let snap = match m {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
            };
            (name.clone(), snap)
        })
        .collect()
}

/// The metric *family* (name without the inline label set).
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Render `v` the way Prometheus expects floats (no exponent tricks
/// needed at our magnitudes; integral values print bare).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render the whole registry in the Prometheus text exposition format
/// (`text/plain; version=0.0.4`), families and series in deterministic
/// name order. Histograms emit cumulative `_bucket{le=...}` lines for
/// non-empty buckets plus `+Inf`, `_sum` and `_count`.
pub fn render_prometheus() -> String {
    let reg = match registry().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, m) in reg.iter() {
        let fam = family(name);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} {}\n", m.kind()));
            last_family = fam.to_string();
        }
        match m {
            Metric::Counter(c) => {
                out.push_str(&format!("{name} {}\n", c.get()));
            }
            Metric::Gauge(g) => {
                out.push_str(&format!("{name} {}\n", fmt_f64(g.get())));
            }
            Metric::Histogram(h) => {
                // Inline labels from the series name must survive on every
                // emitted line: `le` merges into the existing label set on
                // bucket lines, `_sum`/`_count` carry the set verbatim.
                let labels = &name[fam.len()..];
                let bucket_labels = |le: &str| {
                    if labels.is_empty() {
                        format!("{{le=\"{le}\"}}")
                    } else {
                        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
                    }
                };
                let mut cum = 0u64;
                for idx in 0..BUCKETS {
                    let c = h.buckets[idx].load(Ordering::Relaxed);
                    if c == 0 {
                        continue;
                    }
                    cum += c;
                    out.push_str(&format!(
                        "{fam}_bucket{} {cum}\n",
                        bucket_labels(&bucket_upper(idx).to_string())
                    ));
                }
                out.push_str(&format!("{fam}_bucket{} {}\n", bucket_labels("+Inf"), h.count()));
                out.push_str(&format!("{fam}_sum{labels} {}\n", h.sum()));
                out.push_str(&format!("{fam}_count{labels} {}\n", h.count()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_monotone_and_total() {
        let mut last = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS);
            assert!(idx >= last, "bucket index must not decrease at v={v}");
            assert!(bucket_lower(idx) <= v && v <= bucket_upper(idx), "v={v} idx={idx}");
            last = idx;
        }
        // boundaries: every bucket's upper + 1 == next bucket's lower
        for idx in 0..BUCKETS - 1 {
            assert_eq!(bucket_upper(idx) + 1, bucket_lower(idx + 1), "idx={idx}");
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        // p50 of 1..=1000 is ~500; log-linear error bound is ≤ 25%
        assert!((375..=640).contains(&s.p50), "p50={}", s.p50);
        assert!(s.p99 >= 900, "p99={}", s.p99);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::default();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.p50, s.p99), (0, 0, 0, 0));
    }

    #[test]
    fn registry_handles_are_shared_and_typed() {
        let c1 = counter("obs_test_shared_counter");
        let c2 = counter("obs_test_shared_counter");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        let g = gauge("obs_test_gauge");
        g.set(1.5);
        g.add(-0.5);
        assert!((g.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let _ = counter("obs_test_kind_clash");
        let _ = gauge("obs_test_kind_clash");
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_typed() {
        counter("obs_test_render_b").add(7);
        gauge("obs_test_render_a").set(2.0);
        histogram("obs_test_render_h").observe(100);
        let text = render_prometheus();
        assert!(text.contains("# TYPE obs_test_render_a gauge"));
        assert!(text.contains("obs_test_render_a 2\n"));
        assert!(text.contains("# TYPE obs_test_render_b counter"));
        assert!(text.contains("obs_test_render_b 7\n"));
        assert!(text.contains("# TYPE obs_test_render_h histogram"));
        assert!(text.contains("obs_test_render_h_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("obs_test_render_h_sum 100"));
        assert!(text.contains("obs_test_render_h_count 1"));
        // sorted family order
        let a = text.find("obs_test_render_a").unwrap();
        let b = text.find("obs_test_render_b").unwrap();
        assert!(a < b);
    }

    #[test]
    fn labeled_series_group_under_one_family() {
        counter("obs_test_labeled_total{class=\"2xx\"}").inc();
        counter("obs_test_labeled_total{class=\"5xx\"}").add(2);
        let text = render_prometheus();
        assert_eq!(
            text.matches("# TYPE obs_test_labeled_total counter").count(),
            1
        );
        assert!(text.contains("obs_test_labeled_total{class=\"2xx\"} 1"));
        assert!(text.contains("obs_test_labeled_total{class=\"5xx\"} 2"));
    }

    #[test]
    fn labeled_histogram_keeps_labels_on_every_line() {
        histogram("obs_test_labeled_h{model=\"gpt2\",dtype=\"int8\"}").observe(17);
        let text = render_prometheus();
        assert_eq!(text.matches("# TYPE obs_test_labeled_h histogram").count(), 1);
        // bucket lines merge `le` into the existing label set…
        assert!(
            text.contains("obs_test_labeled_h_bucket{model=\"gpt2\",dtype=\"int8\",le=\"+Inf\"} 1"),
            "missing merged +Inf bucket in:\n{text}"
        );
        assert!(text.contains("obs_test_labeled_h_bucket{model=\"gpt2\",dtype=\"int8\",le=\""));
        // …and _sum/_count carry the label set verbatim
        assert!(text.contains("obs_test_labeled_h_sum{model=\"gpt2\",dtype=\"int8\"} 17"));
        assert!(text.contains("obs_test_labeled_h_count{model=\"gpt2\",dtype=\"int8\"} 1"));
        // an unlabeled histogram still renders bare le-only labels
        histogram("obs_test_unlabeled_h").observe(3);
        let text = render_prometheus();
        assert!(text.contains("obs_test_unlabeled_h_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("obs_test_unlabeled_h_sum 3"));
    }

    #[test]
    fn snapshot_all_is_name_sorted() {
        counter("obs_test_sorted_z").inc();
        counter("obs_test_sorted_a").inc();
        let names: Vec<String> = snapshot_all().into_iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn concurrent_observations_are_all_counted() {
        let h = histogram("obs_test_concurrent_h");
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}

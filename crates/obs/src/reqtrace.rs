//! Per-request tracing: lock-free phase records, a bounded completed-trace
//! ring, and an always-retained slow-request reservoir.
//!
//! A [`RequestTrace`] is created when the HTTP layer accepts a request
//! ([`begin`]), threaded through the serving queue and the batch engine as
//! an `Arc` ([`TraceHandle`]), and sealed at response write ([`complete`]).
//! Every pipeline phase appends one fixed-size record — phase tag, a
//! [`crate::clock`] stamp, and two 32-bit arguments (batch size, KV
//! hits, HTTP status, …) — so a single request's life (enqueue → admit →
//! every decode step → retire → respond) is reconstructable after the
//! fact from `/debug/requests/<id>`, or as a Chrome trace-event timeline
//! of the whole batch window via [`chrome_trace_json`].
//!
//! # Lock-freedom on the decode path
//!
//! [`RequestTrace::record`] is the only entry point the batch engine's
//! per-token step touches, and it takes no lock: a slot index is claimed
//! with one `fetch_add`, the argument word is stored relaxed, and the
//! phase+stamp word is published with a release store (readers acquire;
//! an all-zero word means "claimed but not yet published" and is
//! skipped). Records past [`TRACE_SLOTS`] are counted in
//! [`RequestTrace::dropped`] rather than blocking or reallocating. The
//! completed ring and the slow reservoir sit behind a mutex, but that
//! mutex is touched once per *request* (at completion), never per token.
//!
//! # Determinism contract
//!
//! Like the rest of `obs`, traces are write-only telemetry: nothing in
//! the pipeline reads a stamp or a phase record back, so tracing cannot
//! perturb token streams (§4b). The *sequence of phase kinds* for a
//! request is itself deterministic for a given admission composition —
//! `models/tests/batch_equivalence.rs` pins solo vs batch-7 equality.

use crate::clock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Phase-record slots per trace. Sized for the worst realistic request:
/// one slot per prefill token plus one per decode step plus a handful of
/// lifecycle records — a 60-token prompt decoding 256 tokens uses ~320.
/// Overflow increments the per-trace drop counter instead of growing.
pub const TRACE_SLOTS: usize = 1024;

/// Completed traces retained in the FIFO ring (newest win).
pub const RING_CAPACITY: usize = 64;

/// Slowest completed traces retained regardless of ring eviction.
pub const SLOW_CAPACITY: usize = 16;

/// Timestamps are packed into the low 56 bits of the publish word
/// (~833 days of process uptime at ns resolution).
const STAMP_MASK: u64 = (1 << 56) - 1;

/// A pipeline phase tag. Discriminants start at 1 so a zero publish word
/// unambiguously means "slot claimed but not yet written".
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// HTTP request parsed and accepted; args: (0, 0).
    Accept = 1,
    /// Handed to a serving queue; args: (queue depth if known, 0).
    Enqueue = 2,
    /// Admitted into a backend; args: (KV-prefix hit tokens, miss tokens).
    Admit = 3,
    /// Transient admission failure, re-queued head-of-line; args: (attempt, 0).
    Requeue = 4,
    /// Definitive rejection (queue full / prompt can never fit); args: (0, 0).
    Reject = 5,
    /// One prompt token fed during chunked prefill; args: (position, batch size).
    PrefillChunk = 6,
    /// One generated token; args: (tokens emitted so far, batch size).
    DecodeStep = 7,
    /// Sequence left the batch engine; args: (tokens generated, 0).
    Retire = 8,
    /// Response bytes written; args: (HTTP status, 0).
    Respond = 9,
}

impl Phase {
    /// Stable lower-snake name (used in JSON timelines and Chrome events).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Accept => "accept",
            Phase::Enqueue => "enqueue",
            Phase::Admit => "admit",
            Phase::Requeue => "requeue",
            Phase::Reject => "reject",
            Phase::PrefillChunk => "prefill_chunk",
            Phase::DecodeStep => "decode_step",
            Phase::Retire => "retire",
            Phase::Respond => "respond",
        }
    }

    /// Names for the two argument words, per phase (for JSON rendering).
    pub fn arg_keys(self) -> (&'static str, &'static str) {
        match self {
            Phase::Accept => ("a", "b"),
            Phase::Enqueue => ("queue_depth", "b"),
            Phase::Admit => ("kv_hit_tokens", "kv_miss_tokens"),
            Phase::Requeue => ("attempt", "b"),
            Phase::Reject => ("a", "b"),
            Phase::PrefillChunk => ("position", "batch_size"),
            Phase::DecodeStep => ("tokens_out", "batch_size"),
            Phase::Retire => ("tokens_generated", "b"),
            Phase::Respond => ("status", "b"),
        }
    }

    /// Decode a tag byte back to a phase (publish-word round trip).
    pub fn from_u8(tag: u8) -> Option<Phase> {
        Some(match tag {
            1 => Phase::Accept,
            2 => Phase::Enqueue,
            3 => Phase::Admit,
            4 => Phase::Requeue,
            5 => Phase::Reject,
            6 => Phase::PrefillChunk,
            7 => Phase::DecodeStep,
            8 => Phase::Retire,
            9 => Phase::Respond,
            _ => return None,
        })
    }
}

/// One decoded phase record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    /// Which phase.
    pub phase: Phase,
    /// [`crate::clock::epoch_ns`] at record time (low 56 bits).
    pub at_ns: u64,
    /// First argument word (meaning per [`Phase::arg_keys`]).
    pub a: u32,
    /// Second argument word.
    pub b: u32,
}

/// One phase slot: the argument word is stored relaxed first, then the
/// phase+stamp word is published with release ordering.
struct Slot {
    word: AtomicU64,
    args: AtomicU64,
}

/// A single request's trace: identity, start/done stamps, and a
/// fixed-capacity lock-free phase log.
pub struct RequestTrace {
    id: u64,
    start_ns: u64,
    len: AtomicU32,
    dropped: AtomicU32,
    done_ns: AtomicU64,
    slots: Vec<Slot>,
}

impl std::fmt::Debug for RequestTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestTrace")
            .field("id", &self.id)
            .field("phases", &self.len.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl RequestTrace {
    fn new(id: u64) -> RequestTrace {
        let mut slots = Vec::with_capacity(TRACE_SLOTS);
        for _ in 0..TRACE_SLOTS {
            slots.push(Slot {
                word: AtomicU64::new(0),
                args: AtomicU64::new(0),
            });
        }
        RequestTrace {
            id,
            start_ns: clock::epoch_ns(),
            len: AtomicU32::new(0),
            dropped: AtomicU32::new(0),
            done_ns: AtomicU64::new(0),
            slots,
        }
    }

    /// The monotonic trace id (also the `X-Trace-Id` response header).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// [`crate::clock::epoch_ns`] when the trace was created.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// Completion stamp, or 0 while the request is still in flight.
    pub fn done_ns(&self) -> u64 {
        self.done_ns.load(Ordering::Acquire)
    }

    /// End-to-end duration; falls back to "so far" while in flight.
    pub fn duration_ns(&self) -> u64 {
        let done = self.done_ns();
        let end = if done != 0 { done } else { clock::epoch_ns() };
        end.saturating_sub(self.start_ns)
    }

    /// Phase records that overflowed [`TRACE_SLOTS`] and were discarded.
    pub fn dropped(&self) -> u32 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Append a phase record. Lock-free and allocation-free: safe to call
    /// from the batch engine's per-token decode step.
    pub fn record(&self, phase: Phase, a: u32, b: u32) {
        let idx = self.len.fetch_add(1, Ordering::Relaxed) as usize;
        if idx >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &self.slots[idx];
        slot.args
            .store(((a as u64) << 32) | (b as u64), Ordering::Relaxed);
        let word = ((phase as u64) << 56) | (clock::epoch_ns() & STAMP_MASK);
        slot.word.store(word, Ordering::Release);
    }

    /// Decode the published phase log, in record order. Slots claimed but
    /// not yet published (publish word still 0) are skipped.
    pub fn phases(&self) -> Vec<PhaseRecord> {
        let n = (self.len.load(Ordering::Acquire) as usize).min(self.slots.len());
        let mut out = Vec::with_capacity(n);
        for slot in &self.slots[..n] {
            let word = slot.word.load(Ordering::Acquire);
            if word == 0 {
                continue;
            }
            let Some(phase) = Phase::from_u8((word >> 56) as u8) else {
                continue;
            };
            let args = slot.args.load(Ordering::Relaxed);
            out.push(PhaseRecord {
                phase,
                at_ns: word & STAMP_MASK,
                a: (args >> 32) as u32,
                b: args as u32,
            });
        }
        out
    }
}

/// Shared handle to a request's trace; cheap to clone across the queue
/// channel, the worker thread, and the batch engine.
pub type TraceHandle = Arc<RequestTrace>;

/// Queue metadata that rides with a job into a backend: when it was
/// enqueued (for `request_queue_wait_ns` / TTFT attribution) and the
/// request's trace, if the caller carries one. `Default` is "untraced".
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// [`crate::clock::epoch_ns`] when the request entered a queue
    /// (0 = unknown; queue-wait and TTFT then count from admission).
    pub enqueued_ns: u64,
    /// The request's trace, if tracing is attached.
    pub trace: Option<TraceHandle>,
}

impl TraceMeta {
    /// Meta for a trace beginning now (enqueue stamp taken immediately).
    pub fn now(trace: Option<TraceHandle>) -> TraceMeta {
        TraceMeta {
            enqueued_ns: clock::epoch_ns(),
            trace,
        }
    }

    /// Record a phase on the attached trace, if any. The `Option` check
    /// is the entire disabled-path cost — no stamp is taken when `None`.
    pub fn record(&self, phase: Phase, a: u32, b: u32) {
        if let Some(t) = &self.trace {
            t.record(phase, a, b);
        }
    }
}

/// A sink for pipeline phase records. `models` records against this
/// trait so the decode loop never names a concrete trace type; the
/// only implementor is [`RequestTrace`], and the disabled path is an
/// `Option<&dyn TraceSink>` check — zero stamps, zero stores.
pub trait TraceSink {
    /// Append one phase record.
    fn record_phase(&self, phase: Phase, a: u32, b: u32);
}

impl TraceSink for RequestTrace {
    fn record_phase(&self, phase: Phase, a: u32, b: u32) {
        self.record(phase, a, b);
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

struct Store {
    ring: VecDeque<TraceHandle>,
    slow: Vec<TraceHandle>,
}

static STORE: Mutex<Store> = Mutex::new(Store {
    ring: VecDeque::new(),
    slow: Vec::new(),
});

/// Lock the completed-trace store, recovering from poisoning (a panicked
/// holder leaves only telemetry state behind — always safe to adopt).
fn lock_store() -> std::sync::MutexGuard<'static, Store> {
    match STORE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Start a new trace with a fresh monotonic id (first phase: `Accept`).
pub fn begin() -> TraceHandle {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let trace = Arc::new(RequestTrace::new(id));
    trace.record(Phase::Accept, 0, 0);
    trace
}

/// Seal a trace at response write: stamps `done_ns`, pushes it into the
/// bounded completed ring, and offers it to the slow-request reservoir
/// (which keeps the [`SLOW_CAPACITY`] slowest completions seen, surviving
/// ring eviction). Called once per request — never on the decode path.
pub fn complete(trace: &TraceHandle) {
    trace
        .done_ns
        .store(clock::epoch_ns().max(1), Ordering::Release);
    let dur = trace.duration_ns();
    let mut st = lock_store();
    if st.ring.len() >= RING_CAPACITY {
        st.ring.pop_front();
    }
    st.ring.push_back(trace.clone());
    if st.slow.len() < SLOW_CAPACITY {
        st.slow.push(trace.clone());
    } else {
        let mut min_at = 0usize;
        let mut min_dur = u64::MAX;
        for (i, t) in st.slow.iter().enumerate() {
            let d = t.duration_ns();
            if d < min_dur {
                min_dur = d;
                min_at = i;
            }
        }
        if dur > min_dur {
            st.slow[min_at] = trace.clone();
        }
    }
}

/// All retained completed traces — the ring plus any reservoir entries
/// the ring has already evicted — newest first, deduplicated by id.
pub fn completed() -> Vec<TraceHandle> {
    let st = lock_store();
    let mut out: Vec<TraceHandle> = st.ring.iter().rev().cloned().collect();
    for t in st.slow.iter() {
        if !out.iter().any(|o| o.id == t.id) {
            out.push(t.clone());
        }
    }
    out
}

/// Look up a retained completed trace by id.
pub fn find(id: u64) -> Option<TraceHandle> {
    let st = lock_store();
    st.ring
        .iter()
        .find(|t| t.id == id)
        .or_else(|| st.slow.iter().find(|t| t.id == id))
        .cloned()
}

/// Drop all retained traces (the id counter stays monotonic).
pub fn reset() {
    let mut st = lock_store();
    st.ring.clear();
    st.slow.clear();
}

/// Render every retained trace as Chrome trace-event JSON (the legacy
/// array format `chrome://tracing` and Perfetto both load). One complete
/// (`"ph":"X"`) event per phase record; `tid` is the trace id, so each
/// request renders as its own track and a batch window reads as stacked
/// concurrent tracks. Durations span to the next record in the same
/// trace (the last record spans to `done_ns`).
pub fn chrome_trace_json() -> String {
    let traces = completed();
    let mut out = String::with_capacity(4096);
    out.push('[');
    let mut first = true;
    for t in &traces {
        let phases = t.phases();
        for (i, p) in phases.iter().enumerate() {
            let end = match phases.get(i + 1) {
                Some(next) => next.at_ns,
                None => t.done_ns() & STAMP_MASK,
            };
            let dur_ns = end.saturating_sub(p.at_ns);
            if !first {
                out.push(',');
            }
            first = false;
            let (ka, kb) = p.phase.arg_keys();
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"args\":{{\"{}\":{},\"{}\":{}}}}}",
                t.id,
                p.phase.name(),
                p.at_ns as f64 / 1000.0,
                dur_ns as f64 / 1000.0,
                ka,
                p.a,
                kb,
                p.b
            ));
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// Tests share the global completed-trace store; serialize them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn record_and_decode_roundtrip() {
        let t = RequestTrace::new(7);
        t.record(Phase::Enqueue, 3, 0);
        t.record(Phase::Admit, 40, 8);
        t.record(Phase::DecodeStep, 1, 5);
        let ps = t.phases();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].phase, Phase::Enqueue);
        assert_eq!(ps[0].a, 3);
        assert_eq!(ps[1].phase, Phase::Admit);
        assert_eq!((ps[1].a, ps[1].b), (40, 8));
        assert_eq!(ps[2].phase, Phase::DecodeStep);
        assert!(ps[0].at_ns <= ps[1].at_ns && ps[1].at_ns <= ps[2].at_ns);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn overflow_counts_drops() {
        let t = RequestTrace::new(8);
        for i in 0..(TRACE_SLOTS + 10) {
            t.record(Phase::DecodeStep, i as u32, 1);
        }
        assert_eq!(t.phases().len(), TRACE_SLOTS);
        assert_eq!(t.dropped(), 10);
    }

    #[test]
    fn concurrent_records_all_land() {
        let t = Arc::new(RequestTrace::new(9));
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let tc = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    tc.record(Phase::DecodeStep, w * 100 + i, 4);
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(t.phases().len(), 200);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_is_bounded_and_slow_reservoir_survives() {
        let _g = test_lock();
        reset();
        // A deliberately slow trace: real elapsed time dwarfs the
        // µs-scale fast traces below, so it can never be the reservoir
        // minimum that replacement evicts.
        let slow = begin();
        std::thread::sleep(std::time::Duration::from_millis(5));
        slow.record(Phase::Respond, 200, 0);
        complete(&slow);
        let slow_id = slow.id();
        // Flood the ring past capacity with fast traces.
        for _ in 0..(RING_CAPACITY + 8) {
            let t = begin();
            t.record(Phase::Respond, 200, 0);
            complete(&t);
        }
        let all = completed();
        // Ring evicted the slow trace, the reservoir kept it.
        assert!(all.len() <= RING_CAPACITY + SLOW_CAPACITY);
        assert!(find(slow_id).is_some(), "slow trace evicted from reservoir");
        reset();
        assert!(completed().is_empty());
    }

    #[test]
    fn find_returns_completed_trace() {
        let _g = test_lock();
        reset();
        let t = begin();
        t.record(Phase::Admit, 1, 2);
        assert!(t.done_ns() == 0);
        complete(&t);
        assert!(t.done_ns() > 0);
        let got = find(t.id()).expect("trace retained");
        assert_eq!(got.phases().len(), 2);
        reset();
    }

    #[test]
    fn chrome_trace_renders_events() {
        let _g = test_lock();
        reset();
        let t = begin();
        t.record(Phase::Admit, 40, 8);
        t.record(Phase::DecodeStep, 1, 3);
        complete(&t);
        let json = chrome_trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        for probe in ["\"ph\":\"X\"", "\"name\":\"admit\"", "\"name\":\"decode_step\"", "\"kv_hit_tokens\":40"] {
            assert!(json.contains(probe), "chrome json missing {probe}: {json}");
        }
        reset();
    }

    #[test]
    fn meta_records_only_when_attached() {
        let t = Arc::new(RequestTrace::new(11));
        let meta = TraceMeta {
            enqueued_ns: 5,
            trace: Some(t.clone()),
        };
        meta.record(Phase::Enqueue, 1, 0);
        assert_eq!(t.phases().len(), 1);
        let none = TraceMeta::default();
        none.record(Phase::Enqueue, 1, 0); // no-op, must not panic
        assert_eq!(none.enqueued_ns, 0);
    }
}

//! Hierarchical tracing spans.
//!
//! A span is an RAII guard: [`span`] (or the [`span!`](crate::span)
//! macro) pushes a frame onto a thread-local stack and the guard's `Drop`
//! pops it, recording the span's duration. Nesting is implicit — a span
//! opened while another is live becomes its child, and the recorded
//! *path* is the `;`-joined chain of names (`"generate;decode.token"`),
//! which is exactly the folded-stacks format flamegraph tooling consumes.
//!
//! Two global sinks are fed on every span close, both bounded:
//!
//! * an aggregate map `path -> (count, self_ns)` where `self_ns` excludes
//!   time attributed to children — [`folded_stacks`] renders it;
//! * a ring buffer of the most recent [`SpanEvent`]s (capacity
//!   [`RING_CAPACITY`]) for "what just happened" debugging via
//!   [`recent_events`].
//!
//! Span names must be `&'static str` literals: that keeps the hot path
//! allocation-free until close and bounds cardinality by construction.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

use crate::clock;

/// Maximum number of events retained in the recent-events ring.
pub const RING_CAPACITY: usize = 4096;

struct Frame {
    name: &'static str,
    /// ns already attributed to completed child spans.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// One completed span, as kept in the recent-events ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// `;`-joined ancestry path ending in this span's name.
    pub path: String,
    /// Start time, ns since the process epoch.
    pub start_ns: u64,
    /// Total duration in ns (including children).
    pub dur_ns: u64,
}

#[derive(Default)]
struct TraceState {
    /// path -> (close count, total self-time ns).
    folded: BTreeMap<String, (u64, u64)>,
    ring: VecDeque<SpanEvent>,
    /// Events evicted from the ring since the last [`reset`] — without
    /// this, a busy window silently overwrites history and a reader of
    /// [`recent_events`] can't tell a quiet period from a saturated ring.
    dropped: u64,
}

static TRACE: OnceLock<Mutex<TraceState>> = OnceLock::new();

fn state() -> &'static Mutex<TraceState> {
    TRACE.get_or_init(|| Mutex::new(TraceState::default()))
}

fn lock_state() -> std::sync::MutexGuard<'static, TraceState> {
    match state().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Open a span named `name`; it closes (and is recorded) when the
/// returned guard drops. Prefer the [`span!`](crate::span) macro at call
/// sites.
pub fn span(name: &'static str) -> SpanGuard {
    let start = clock::epoch_ns();
    STACK.with(|s| s.borrow_mut().push(Frame { name, child_ns: 0 }));
    SpanGuard { name, start_ns: start }
}

/// RAII guard returned by [`span`]; records the span on drop.
#[must_use = "a span measures the scope it lives in; bind it with `let _span = ...`"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = clock::epoch_ns().saturating_sub(self.start_ns);
        let (path, child_ns) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop until we find our own frame. Guards drop in LIFO order
            // in straight-line code, so the loop runs once; early drops of
            // parent guards simply discard the orphaned child frames.
            let mut child_ns = 0;
            while let Some(frame) = stack.pop() {
                if std::ptr::eq(frame.name, self.name) {
                    child_ns = frame.child_ns;
                    break;
                }
            }
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += dur;
            }
            let mut path = String::new();
            for frame in stack.iter() {
                path.push_str(frame.name);
                path.push(';');
            }
            path.push_str(self.name);
            (path, child_ns)
        });
        let self_ns = dur.saturating_sub(child_ns);
        let mut st = lock_state();
        let entry = st.folded.entry(path.clone()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += self_ns;
        if st.ring.len() == RING_CAPACITY {
            st.ring.pop_front();
            st.dropped += 1;
        }
        st.ring.push_back(SpanEvent {
            path,
            start_ns: self.start_ns,
            dur_ns: dur,
        });
    }
}

/// Render the aggregate span data as folded stacks — one
/// `path;to;span self_ns` line per unique path, in deterministic path
/// order — directly consumable by `flamegraph.pl` / `inferno`. The first
/// line is a `#`-prefixed header (a comment to flamegraph tooling)
/// reporting how many events the bounded ring has overwritten, so a
/// saturated ring is visible instead of silently lossy.
pub fn folded_stacks() -> String {
    let st = lock_state();
    let mut out = format!("# ring_dropped: {}\n", st.dropped);
    for (path, (_count, self_ns)) in st.folded.iter() {
        out.push_str(&format!("{path} {self_ns}\n"));
    }
    out
}

/// Events evicted from the recent-events ring since the last [`reset`].
pub fn ring_dropped() -> u64 {
    lock_state().dropped
}

/// Aggregate close counts per path, in deterministic path order.
pub fn span_counts() -> Vec<(String, u64)> {
    let st = lock_state();
    st.folded
        .iter()
        .map(|(path, (count, _))| (path.clone(), *count))
        .collect()
}

/// The most recent completed spans, oldest first (bounded by
/// [`RING_CAPACITY`]).
pub fn recent_events() -> Vec<SpanEvent> {
    let st = lock_state();
    st.ring.iter().cloned().collect()
}

/// Clear all recorded trace data (tests and long-lived processes).
pub fn reset() {
    let mut st = lock_state();
    st.folded.clear();
    st.ring.clear();
    st.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize trace tests: they share the global sink.
    fn trace_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        match LOCK.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn nested_spans_fold_into_paths() {
        let _guard = trace_test_lock();
        reset();
        {
            let _outer = span("outer_test");
            {
                let _inner = span("inner_test");
            }
            {
                let _inner = span("inner_test");
            }
        }
        let folded = folded_stacks();
        assert!(folded.contains("outer_test "), "{folded}");
        assert!(folded.contains("outer_test;inner_test "), "{folded}");
        let counts = span_counts();
        assert!(counts.contains(&("outer_test;inner_test".to_string(), 2)), "{counts:?}");
        assert!(counts.contains(&("outer_test".to_string(), 1)), "{counts:?}");
    }

    #[test]
    fn self_time_excludes_children() {
        let _guard = trace_test_lock();
        reset();
        {
            let _outer = span("self_time_outer");
            let _inner = span("self_time_inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let events = recent_events();
        let outer = events
            .iter()
            .find(|e| e.path == "self_time_outer")
            .expect("outer recorded");
        let inner = events
            .iter()
            .find(|e| e.path == "self_time_outer;self_time_inner")
            .expect("inner recorded");
        assert!(outer.dur_ns >= inner.dur_ns);
        // outer's *self* time in the folded map must be far below its
        // total duration, since almost everything happened in the child.
        let st = lock_state();
        let (_, outer_self) = st.folded["self_time_outer"];
        assert!(
            outer_self < outer.dur_ns / 2,
            "self={outer_self} total={}",
            outer.dur_ns
        );
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let _guard = trace_test_lock();
        reset();
        assert_eq!(ring_dropped(), 0);
        for _ in 0..RING_CAPACITY + 10 {
            let _s = span("ring_bound_test");
        }
        assert_eq!(recent_events().len(), RING_CAPACITY);
        assert_eq!(ring_dropped(), 10);
        let folded = folded_stacks();
        assert!(folded.starts_with("# ring_dropped: 10\n"), "{folded}");
        reset();
        assert_eq!(ring_dropped(), 0);
    }

    #[test]
    fn spans_on_other_threads_do_not_nest_under_ours() {
        let _guard = trace_test_lock();
        reset();
        let _outer = span("main_thread_outer");
        std::thread::spawn(|| {
            let _s = span("worker_thread_span");
        })
        .join()
        .unwrap();
        let folded = folded_stacks();
        assert!(folded.contains("worker_thread_span "), "{folded}");
        assert!(!folded.contains("main_thread_outer;worker_thread_span"), "{folded}");
    }
}

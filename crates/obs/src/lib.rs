//! Zero-dependency observability: clock, metrics registry, tracing spans.
//!
//! `obs` is the repo's telemetry layer and its *only* wall-clock
//! authority (see [`clock`]). It provides:
//!
//! * [`metrics`] — lock-free counters, gauges and log-linear latency
//!   histograms behind a name-keyed registry, rendered in Prometheus text
//!   format by [`metrics::render_prometheus`] (served at `GET /metrics`);
//! * [`trace`] — hierarchical RAII spans with a bounded event ring and a
//!   flamegraph-compatible folded-stacks dump;
//! * [`reqtrace`] — per-request phase traces (lock-free on the decode
//!   path) with a bounded completed ring and a slow-request reservoir,
//!   serving `/debug/requests` and Chrome trace-event export;
//! * [`Clock`]/[`Stamp`] — monotonic stamps, re-exported from [`clock`].
//!
//! # Determinism contract
//!
//! Instrumentation is always on, yet cannot affect results: stamps,
//! counters and spans are write-only telemetry — no computation reads
//! them back. The `obs-only-timing` xlint rule enforces the boundary by
//! forbidding raw `Instant::now()`/`SystemTime` in instrumented crates,
//! so any new timing necessarily flows through here.
//!
//! # Usage
//!
//! ```
//! // a cached-handle counter and histogram at a hot call site
//! obs::static_counter!("doc_requests_total").inc();
//! let start = obs::Clock::now();
//! // ... work ...
//! obs::static_histogram!("doc_request_ns").observe(start.elapsed_ns());
//!
//! // a hierarchical span (records on scope exit)
//! let _span = obs::span!("doc.example");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod metrics;
pub mod reqtrace;
pub mod trace;

pub use clock::{Clock, Stamp};

/// Open a tracing span for the current scope: `let _s = obs::span!("x");`.
/// Expands to [`trace::span`]; the guard records the span when dropped.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

/// A [`metrics::Counter`] handle cached per call site (registry lookup
/// runs once): `obs::static_counter!("reqs_total").inc();`.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// A [`metrics::Gauge`] handle cached per call site:
/// `obs::static_gauge!("queue_depth").add(1.0);`.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// A [`metrics::Histogram`] handle cached per call site:
/// `obs::static_histogram!("step_ns").observe(ns);`.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_and_record() {
        for _ in 0..3 {
            crate::static_counter!("obs_test_macro_counter").inc();
        }
        assert_eq!(crate::metrics::counter("obs_test_macro_counter").get(), 3);

        crate::static_gauge!("obs_test_macro_gauge").set(4.5);
        assert_eq!(crate::metrics::gauge("obs_test_macro_gauge").get(), 4.5);

        crate::static_histogram!("obs_test_macro_hist").observe(42);
        assert_eq!(crate::metrics::histogram("obs_test_macro_hist").count(), 1);

        let start = crate::Clock::now();
        {
            let _s = crate::span!("obs_test_macro_span");
        }
        assert!(start.elapsed_secs() >= 0.0);
    }
}

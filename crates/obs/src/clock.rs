//! The repo's single wall-clock authority.
//!
//! Every timing read in the instrumented crates (tensor, models, serving,
//! ratatouille) goes through [`Clock`]; `xlint`'s `obs-only-timing` rule
//! forbids raw `std::time::Instant::now()`/`SystemTime` there, so this
//! module is the one place a wall clock can enter the system. Telemetry
//! derived from it (metrics, spans) is write-only from the computation's
//! point of view — nothing downstream of a [`Stamp`] can feed back into
//! losses, weights or generated tokens, which is what keeps the §4b
//! determinism contract intact with instrumentation always on.
//!
//! Stamps are nanoseconds since a lazily-initialized process epoch, so
//! they are plain `u64`s: cheap to move across channels (the worker pools
//! send enqueue stamps with each job) and directly usable as histogram
//! samples.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process epoch (the first clock read).
pub fn epoch_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The process-wide monotonic clock. Stateless; exists so call sites read
/// as `Clock::now()` and grep for exactly one timing idiom.
pub struct Clock;

impl Clock {
    /// Take a monotonic stamp.
    pub fn now() -> Stamp {
        Stamp { at_ns: epoch_ns() }
    }
}

/// A moment taken from [`Clock::now`], as ns since the process epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    at_ns: u64,
}

impl Stamp {
    /// Nanoseconds since the process epoch at stamp time.
    pub fn at_ns(&self) -> u64 {
        self.at_ns
    }

    /// Nanoseconds elapsed since this stamp was taken.
    pub fn elapsed_ns(&self) -> u64 {
        epoch_ns().saturating_sub(self.at_ns)
    }

    /// Seconds elapsed since this stamp was taken.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ns() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotonic() {
        let a = Clock::now();
        let b = Clock::now();
        assert!(b.at_ns() >= a.at_ns());
        assert!(a.elapsed_ns() >= b.at_ns() - a.at_ns());
    }

    #[test]
    fn elapsed_advances() {
        let s = Clock::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(s.elapsed_ns() >= 1_000_000, "{}", s.elapsed_ns());
        assert!(s.elapsed_secs() > 0.0);
    }
}

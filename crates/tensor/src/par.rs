//! Scoped-thread data parallelism for the heavy kernels.
//!
//! The paper trained on an Nvidia A100 ("2–3 days on CPU vs ~16 h on GPU").
//! Our substitute for that hardware axis is CPU thread parallelism: the
//! worker count is a process-wide runtime knob so the `training_speedup`
//! reproduction binary can sweep 1→N threads over the identical workload.

use std::sync::atomic::{AtomicUsize, Ordering};

/// 0 means "use all available parallelism".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the number of worker threads used by parallel kernels.
///
/// `0` restores the default (all available cores). Takes effect for
/// subsequent kernel launches; in-flight kernels are unaffected.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// The number of worker threads parallel kernels will use right now.
pub fn num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Run `f(start, end, chunk_index)` over disjoint chunks of `0..len` on
/// scoped threads. Falls back to a direct call when one thread suffices or
/// the work is too small to amortize thread spawn cost.
///
/// `f` must be safe to run concurrently on disjoint ranges — callers
/// partition their output buffers accordingly.
pub fn parallel_chunks<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    let threads = num_threads().min(len / min_chunk.max(1)).max(1);
    if threads <= 1 || len == 0 {
        f(0, len, 0);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let fref = &f;
            s.spawn(move || fref(start, end, t));
        }
    });
}

/// Fill disjoint row-chunks of `out`, where each chunk of `rows` rows of
/// width `row_len` is produced by `f(row_range, out_chunk)`.
///
/// This is the safe wrapper the matmul kernels use: the output buffer is
/// split with `chunks_mut`, so no unsafe aliasing is needed.
pub fn parallel_rows_mut<F>(out: &mut [f32], rows: usize, row_len: usize, min_rows: usize, f: F)
where
    F: Fn(std::ops::Range<usize>, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), rows * row_len, "output buffer size mismatch");
    let threads = num_threads().min(rows / min_rows.max(1)).max(1);
    if threads <= 1 || rows == 0 {
        f(0..rows, out);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut row = 0usize;
        let fref = &f;
        while row < rows {
            let take = rows_per.min(rows - row);
            let (head, tail) = rest.split_at_mut(take * row_len);
            let range = row..row + take;
            s.spawn(move || fref(range, head));
            rest = tail;
            row += take;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_positive() {
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn set_and_restore() {
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn parallel_chunks_covers_range_once() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u8; 1000]);
        parallel_chunks(1000, 10, |s, e, _| {
            let mut h = hits.lock().unwrap();
            for i in s..e {
                h[i] += 1;
            }
        });
        assert!(hits.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn parallel_rows_mut_writes_disjoint_rows() {
        let rows = 64;
        let width = 7;
        let mut out = vec![0.0f32; rows * width];
        parallel_rows_mut(&mut out, rows, width, 1, |range, chunk| {
            for (i, r) in range.clone().enumerate() {
                for c in 0..width {
                    chunk[i * width + c] = (r * width + c) as f32;
                }
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn small_work_runs_inline() {
        let mut out = vec![0.0f32; 3];
        parallel_rows_mut(&mut out, 3, 1, 100, |range, chunk| {
            assert_eq!(range, 0..3);
            chunk.fill(1.0);
        });
        assert_eq!(out, vec![1.0; 3]);
    }
}

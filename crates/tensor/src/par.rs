//! Persistent-pool data parallelism for the heavy kernels.
//!
//! The paper trained on an Nvidia A100 ("2–3 days on CPU vs ~16 h on GPU").
//! Our substitute for that hardware axis is CPU thread parallelism: the
//! worker count is a process-wide runtime knob so the `training_speedup`
//! reproduction binary can sweep 1→N threads over the identical workload.
//!
//! Kernels used to spawn (and join) fresh `std::thread::scope` threads on
//! every launch, which puts a thread create/destroy pair on every matmul in
//! the training and decoding hot path. This module instead keeps a
//! lazily-initialized pool of parked workers alive for the life of the
//! process and hands them work over `mpsc` channels:
//!
//! * **Lazy & growable** — no threads exist until the first parallel launch;
//!   the pool grows to the largest worker count ever requested and idle
//!   workers block on their (empty) task channel, costing no CPU.
//! * **Deterministic** — chunk boundaries are a pure function of
//!   `(len, num_threads())`, chunk `i` always runs on worker `i-1` (chunk 0
//!   runs inline on the launching thread), and every kernel accumulates in
//!   a fixed order within its chunk, so results are byte-identical across
//!   thread counts and across runs.
//! * **Nested-launch safe** — a parallel region launched from inside a pool
//!   worker runs inline on that worker instead of re-entering the pool, so
//!   nested kernels can never deadlock on a full pool.
//! * **Panic-transparent** — a panicking task is caught on the worker,
//!   forwarded to the launcher, and re-thrown there after all sibling tasks
//!   finish; the worker itself survives for the next launch.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};

/// 0 means "use all available parallelism".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the number of worker threads used by parallel kernels.
///
/// `0` restores the default (all available cores). Takes effect for
/// subsequent kernel launches; in-flight kernels are unaffected. Thread
/// count never changes kernel results — chunking is deterministic and
/// per-chunk accumulation order is fixed.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Detected core count, resolved once. `available_parallelism` reads
/// cgroup quota files on Linux (microseconds per call) — far too slow to
/// query on every kernel launch, and the answer never changes within a
/// process lifetime.
static DEFAULT_THREADS: OnceLock<usize> = OnceLock::new();

/// The number of worker threads parallel kernels will use right now.
pub fn num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => *DEFAULT_THREADS.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }),
        n => n,
    }
}

/// Result of one pool task: `Ok` or the payload of a caught panic.
type TaskResult = Result<(), Box<dyn std::any::Any + Send>>;

/// A unit of work sent to one pool worker: run `f(index)`, then ack.
struct Job {
    /// Lifetime-erased task closure. Soundness: the launcher blocks on the
    /// `done` channel (in [`Latch`]) until every job has acked, so the
    /// borrow outlives all worker access even though it is typed `'static`.
    f: &'static (dyn Fn(usize) + Sync),
    index: usize,
    /// Enqueue stamp, for the `tensor_pool_queue_wait_ns` histogram.
    enqueued_ns: u64,
    done: mpsc::Sender<TaskResult>,
}

struct Pool {
    /// One task channel per worker; index in this vec == worker id.
    senders: Mutex<Vec<mpsc::Sender<Job>>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set once inside pool workers: nested launches run inline.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        senders: Mutex::new(Vec::new()),
    })
}

impl Pool {
    /// Grow the pool to at least `n` workers and return their senders.
    fn workers(&self, n: usize) -> Vec<mpsc::Sender<Job>> {
        // xlint: allow(transitive-panic-in-request-path): mutex poisoning means a worker already panicked; propagating is the only sane response
        let mut senders = self.senders.lock().unwrap();
        while senders.len() < n {
            let (tx, rx) = mpsc::channel::<Job>();
            let id = senders.len();
            std::thread::Builder::new()
                .name(format!("rat-pool-{id}"))
                .spawn(move || worker_loop(rx))
                // xlint: allow(transitive-panic-in-request-path): thread spawn failure is unrecoverable resource exhaustion; there is no degraded mode
                .expect("failed to spawn pool worker");
            senders.push(tx);
        }
        obs::static_gauge!("tensor_pool_workers").set(senders.len() as f64);
        senders[..n].to_vec()
    }
}

fn worker_loop(rx: mpsc::Receiver<Job>) {
    IS_POOL_WORKER.with(|w| w.set(true));
    // The receiver errors only when the pool itself is dropped (process
    // exit), which is this worker's shutdown signal.
    while let Ok(job) = rx.recv() {
        let dequeued = obs::Clock::now();
        obs::static_histogram!("tensor_pool_queue_wait_ns")
            .observe(dequeued.at_ns().saturating_sub(job.enqueued_ns));
        let result = catch_unwind(AssertUnwindSafe(|| (job.f)(job.index)));
        obs::static_histogram!("tensor_pool_exec_ns").observe(dequeued.elapsed_ns());
        // A send error means the launcher already gave up (its latch was
        // dropped during an unwind after draining); nothing left to do.
        let _ = job.done.send(result);
    }
}

/// Blocks until all dispatched jobs have acked. The `Drop` impl is the
/// soundness backstop: even if the launcher's inline chunk panics, the
/// borrow handed to the workers stays alive until they are all done.
struct Latch {
    rx: mpsc::Receiver<TaskResult>,
    outstanding: usize,
}

impl Latch {
    /// Wait for every outstanding ack; return the first panic payload.
    fn drain(&mut self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut panic = None;
        while self.outstanding > 0 {
            match self.rx.recv() {
                Ok(Ok(())) => {}
                Ok(Err(p)) => {
                    if panic.is_none() {
                        panic = Some(p);
                    }
                }
                // All senders dropped: a worker died before acking. Treat
                // the remaining jobs as lost rather than hang forever.
                Err(_) => break,
            }
            self.outstanding -= 1;
        }
        self.outstanding = 0;
        panic
    }
}

impl Drop for Latch {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

/// Run `f(0)`, `f(1)`, …, `f(tasks-1)` exactly once each, concurrently on
/// the persistent pool. Task 0 runs inline on the calling thread; task `i`
/// runs on pool worker `i-1` (a fixed assignment, for determinism).
///
/// Runs everything inline when `tasks <= 1` or when called from inside a
/// pool worker (nested launch). Panics in any task propagate to the caller
/// after all tasks have finished.
pub fn run_tasks<F>(tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if tasks == 0 {
        return;
    }
    if tasks == 1 || IS_POOL_WORKER.with(|w| w.get()) {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    obs::static_counter!("tensor_pool_launches_total").inc();
    let senders = pool().workers(tasks - 1);
    let (done_tx, done_rx) = mpsc::channel::<TaskResult>();
    let f_ref: &(dyn Fn(usize) + Sync) = &f;
    // SAFETY(invariant: the fabricated 'static never outlives this frame's `f`)
    // Lifetime erasure only — every exit path from this function (normal
    // return, local panic, worker panic) runs `latch.drain()` — directly
    // or via `Latch::drop` — which blocks until each dispatched job has
    // sent its TaskResult, i.e. until no worker can touch `f` again.
    // `F: Sync` makes the shared `&f` sound across the pool threads.
    let f_static: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<_, &'static (dyn Fn(usize) + Sync)>(f_ref) };
    let mut latch = Latch {
        rx: done_rx,
        outstanding: 0,
    };
    for (w, sender) in senders.iter().enumerate() {
        sender
            .send(Job {
                f: f_static,
                index: w + 1,
                enqueued_ns: obs::Clock::now().at_ns(),
                done: done_tx.clone(),
            })
            // xlint: allow(transitive-panic-in-request-path): workers never drop their receiver while the pool lives; a closed channel is a torn-down process
            .expect("pool worker channel closed");
        latch.outstanding += 1;
    }
    drop(done_tx);
    let local = catch_unwind(AssertUnwindSafe(|| f(0)));
    let worker_panic = latch.drain();
    if let Err(p) = local {
        std::panic::resume_unwind(p);
    }
    if let Some(p) = worker_panic {
        std::panic::resume_unwind(p);
    }
}

/// Run `f(start, end, chunk_index)` over disjoint chunks of `0..len` on
/// the persistent pool. Falls back to a direct call when one thread
/// suffices or the work is too small to amortize a pool launch.
///
/// `f` must be safe to run concurrently on disjoint ranges — callers
/// partition their output buffers accordingly.
pub fn parallel_chunks<F>(len: usize, min_chunk: usize, f: F)
where
    F: Fn(usize, usize, usize) + Sync,
{
    let threads = num_threads().min(len / min_chunk.max(1)).max(1);
    if threads <= 1 || len == 0 {
        f(0, len, 0);
        return;
    }
    let chunk = len.div_ceil(threads);
    let tasks = len.div_ceil(chunk);
    run_tasks(tasks, |t| {
        let start = t * chunk;
        let end = ((t + 1) * chunk).min(len);
        if start < end {
            f(start, end, t);
        }
    });
}

/// Run `f(i, &mut slots[i])` exactly once for every slot, scattered over
/// the persistent pool — the general task-scatter entry point for
/// non-GEMM work (e.g. the per-sequence paged-attention sweep, where each
/// slot carries its own scratch buffers and output range).
///
/// Slots are grouped into at most [`num_threads`] contiguous runs whose
/// boundaries are a pure function of `(slots.len(), num_threads())`; run
/// `i` executes on the same thread [`run_tasks`] always gives task `i`
/// (run 0 inline on the caller, run `i` on pool worker `i-1`), and slots
/// within a run execute in ascending index order. Task panics propagate
/// to the caller after all sibling tasks finish, exactly like every
/// other pool launch.
///
/// Determinism note: grouping only affects *where* a slot runs, never
/// what it computes — each slot must be computable independently of the
/// others (they are handed out as disjoint `&mut`), so results are
/// byte-identical across thread counts by construction.
pub fn scatter_mut<T, F>(slots: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = slots.len();
    let tasks = num_threads().min(n).max(1);
    if tasks <= 1 || n == 0 {
        for (i, slot) in slots.iter_mut().enumerate() {
            f(i, slot);
        }
        return;
    }
    let per = n.div_ceil(tasks);
    let base = slots.as_mut_ptr();
    let mut parts = Vec::with_capacity(tasks);
    let mut start = 0usize;
    while start < n {
        let take = per.min(n - start);
        parts.push(RawPart {
            start_row: start,
            end_row: start + take,
            // SAFETY(invariant: `start < n` makes this an in-bounds offset of `slots`)
            ptr: unsafe { base.add(start) },
            len: take,
        });
        start += take;
    }
    run_tasks(parts.len(), |i| {
        let p = &parts[i];
        // SAFETY(disjoint: parts[i] — consecutive slot runs tile `slots` without overlap)
        // `run_tasks` invokes each index exactly once, and `slots`' `&mut`
        // borrow is held across the join — so this is the sole live
        // reference to the run.
        let run = unsafe { std::slice::from_raw_parts_mut(p.ptr, p.len) };
        for (j, slot) in run.iter_mut().enumerate() {
            f(p.start_row + j, slot);
        }
    });
}

/// A raw chunk of the output buffer, pre-split so disjoint `&mut` slices
/// can be reconstructed inside the shared task closure. Generic over the
/// element type so both `f32` kernel outputs and `i8` quantized buffers
/// can be tiled.
struct RawPart<T> {
    start_row: usize,
    end_row: usize,
    ptr: *mut T,
    len: usize,
}

// SAFETY(invariant: moving a part moves exclusive access to its region)
// A `RawPart` is only ever created by the scatter helpers, which cut one
// live `&mut [T]` into non-overlapping `[ptr, ptr+len)` regions; moving a
// part to a pool thread therefore never shares its region. `T: Send`
// bounds the element itself to types whose exclusive access may cross
// threads.
unsafe impl<T: Send> Send for RawPart<T> {}
// SAFETY(invariant: shared access only reads the immutable pointer and bounds)
// Tasks receive `&RawPart` through the shared closure, but task index `i`
// is dispatched exactly once, so each part's region is reconstructed into
// a `&mut` slice by exactly one thread.
unsafe impl<T: Send> Sync for RawPart<T> {}

/// Fill disjoint row-chunks of `out`, where each chunk of `rows` rows of
/// width `row_len` is produced by `f(row_range, out_chunk)`.
///
/// This is the safe wrapper the matmul and quantization kernels use: the
/// output buffer is pre-split into disjoint parts (boundaries depend only
/// on `rows` and the thread count, never on scheduling), so no aliasing is
/// possible.
pub fn parallel_rows_mut<T, F>(out: &mut [T], rows: usize, row_len: usize, min_rows: usize, f: F)
where
    T: Send,
    F: Fn(std::ops::Range<usize>, &mut [T]) + Sync,
{
    assert_eq!(out.len(), rows * row_len, "output buffer size mismatch");
    let threads = num_threads().min(rows / min_rows.max(1)).max(1);
    if threads <= 1 || rows == 0 {
        f(0..rows, out);
        return;
    }
    let rows_per = rows.div_ceil(threads);
    let base = out.as_mut_ptr();
    let mut parts = Vec::with_capacity(threads);
    let mut row = 0usize;
    while row < rows {
        let take = rows_per.min(rows - row);
        parts.push(RawPart {
            start_row: row,
            end_row: row + take,
            // SAFETY(invariant: `row < rows` and the asserted `out.len()` keep this in bounds)
            ptr: unsafe { base.add(row * row_len) },
            len: take * row_len,
        });
        row += take;
    }
    run_tasks(parts.len(), |i| {
        let p = &parts[i];
        // SAFETY(disjoint: parts[i] — consecutive `row * row_len` chunks tile `out`)
        // `run_tasks` invokes each index exactly once, and `out`'s `&mut`
        // borrow is held across the join — so this is the sole live
        // reference to the region.
        let chunk = unsafe { std::slice::from_raw_parts_mut(p.ptr, p.len) };
        f(p.start_row..p.end_row, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_positive() {
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn set_and_restore() {
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn parallel_chunks_covers_range_once() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u8; 1000]);
        parallel_chunks(1000, 10, |s, e, _| {
            let mut h = hits.lock().unwrap();
            for i in s..e {
                h[i] += 1;
            }
        });
        assert!(hits.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn parallel_rows_mut_writes_disjoint_rows() {
        let rows = 64;
        let width = 7;
        let mut out = vec![0.0f32; rows * width];
        parallel_rows_mut(&mut out, rows, width, 1, |range, chunk| {
            for (i, r) in range.clone().enumerate() {
                for c in 0..width {
                    chunk[i * width + c] = (r * width + c) as f32;
                }
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn parallel_rows_mut_is_element_generic() {
        let rows = 33;
        let width = 5;
        let mut out = vec![0i8; rows * width];
        parallel_rows_mut(&mut out, rows, width, 1, |range, chunk| {
            for (i, r) in range.clone().enumerate() {
                for c in 0..width {
                    chunk[i * width + c] = ((r * width + c) % 127) as i8;
                }
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i % 127) as i8);
        }
    }

    #[test]
    fn scatter_mut_visits_each_slot_exactly_once() {
        set_num_threads(3);
        let mut slots: Vec<(usize, u32)> = (0..17).map(|i| (i, 0)).collect();
        scatter_mut(&mut slots, |i, s| {
            assert_eq!(i, s.0, "slot index must match position");
            s.1 += 1;
        });
        assert!(slots.iter().all(|&(_, hits)| hits == 1));
        set_num_threads(0);
    }

    #[test]
    fn scatter_mut_results_identical_across_thread_counts() {
        let run = |threads: usize| -> Vec<f32> {
            set_num_threads(threads);
            let mut slots = vec![0.0f32; 64];
            scatter_mut(&mut slots, |i, s| *s = (i * i) as f32 * 0.5);
            set_num_threads(0);
            slots
        };
        let base = run(1);
        for t in [2, 3, 4, 7] {
            assert_eq!(base, run(t), "scatter result changed at {t} threads");
        }
    }

    #[test]
    fn scatter_mut_panic_propagates() {
        set_num_threads(2);
        let caught = std::panic::catch_unwind(|| {
            let mut slots = vec![0u8; 8];
            scatter_mut(&mut slots, |i, _| {
                if i == 5 {
                    panic!("boom in slot 5");
                }
            });
        });
        set_num_threads(0);
        assert!(caught.is_err(), "slot panic must reach the launcher");
    }

    #[test]
    fn small_work_runs_inline() {
        let mut out = vec![0.0f32; 3];
        parallel_rows_mut(&mut out, 3, 1, 100, |range, chunk| {
            assert_eq!(range, 0..3);
            chunk.fill(1.0);
        });
        assert_eq!(out, vec![1.0; 3]);
    }

    #[test]
    fn repeated_launches_reuse_pool() {
        use std::sync::atomic::AtomicU64;
        let total = AtomicU64::new(0);
        for _ in 0..200 {
            parallel_chunks(64, 1, |s, e, _| {
                total.fetch_add((e - s) as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 64);
    }

    #[test]
    fn nested_launches_run_inline_without_deadlock() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u32; 256]);
        parallel_chunks(256, 1, |s, e, _| {
            // nested launch from (potentially) inside a pool worker
            parallel_chunks(e - s, 1, |ns, ne, _| {
                let mut h = hits.lock().unwrap();
                for i in s + ns..s + ne {
                    h[i] += 1;
                }
            });
        });
        assert!(hits.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            parallel_chunks(64, 1, |s, _, _| {
                if s == 0 {
                    panic!("boom in chunk 0");
                }
            });
        });
        assert!(caught.is_err(), "panic must propagate to the launcher");
        // pool still functional after the panic
        use std::sync::Mutex;
        let hits = Mutex::new(0usize);
        parallel_chunks(128, 1, |s, e, _| {
            *hits.lock().unwrap() += e - s;
        });
        assert_eq!(*hits.lock().unwrap(), 128);
    }
}

//! Vectorized scalar-free inner loops shared by the matmul kernels and the
//! incremental decode path.
//!
//! The workspace builds for baseline `x86-64` (SSE2) so it runs anywhere,
//! but the training/decoding hot loops are worth specializing: when the
//! host CPU reports AVX2+FMA at runtime we dispatch to 8-lane fused
//! multiply-add kernels, otherwise to portable loops the auto-vectorizer
//! handles. Selection happens **once per process** and never depends on
//! thread count or data values, so results are deterministic on a given
//! machine (FMA contracts differently from mul+add, so bits may differ
//! *across* machines — golden tests only ever compare run-vs-run).
//!
//! Every kernel here accumulates in a fixed k-ascending order per output
//! element, which is what lets the blocked, multithreaded matmuls promise
//! byte-identical results for any `set_num_threads` value.

use crate::dtype::{Element, F16};

/// True when the 8-lane FMA kernels are usable on this host.
#[inline]
pub(crate) fn use_avx2_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED
            .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the integer AVX2 kernels (`maddubs`-based int8 dot) are
/// usable on this host. Integer SIMD needs no FMA, so this probe is
/// AVX2-only; the choice never affects results — integer accumulation is
/// exact, so the AVX2 and portable paths are bit-identical.
#[inline]
pub(crate) fn use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the hardware f16↔f32 conversion kernels are usable. The F16C
/// widen (`vcvtph2ps`) is exact and the scalar fallback widens exactly
/// too, so dispatch never changes results.
#[inline]
pub(crate) fn use_f16c() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::OnceLock;
        static DETECTED: OnceLock<bool> = OnceLock::new();
        *DETECTED.get_or_init(|| {
            is_x86_feature_detected!("f16c")
                && is_x86_feature_detected!("avx2")
                && is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Dot product with a fixed reduction tree (independent of call site).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2_fma() {
        // SAFETY(invariant: `use_avx2_fma()` returned true and lengths were asserted equal)
        // The one-time cpuid probe confirmed AVX2+FMA on this host —
        // `dot_avx`'s `#[target_feature]` contract holds; the length
        // equality is the only bound `dot_avx` relies on.
        return unsafe { dot_avx(a, b) };
    }
    dot_portable(a, b)
}

fn dot_portable(a: &[f32], b: &[f32]) -> f32 {
    // Four independent accumulator chains so the auto-vectorizer can keep
    // lanes busy; the combine order is fixed.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let (x, y) = (&a[i * 4..i * 4 + 4], &b[i * 4..i * 4 + 4]);
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

// SAFETY(invariant: unsafe solely for `#[target_feature]` — caller-verified AVX2+FMA)
// All loads use `loadu` (no alignment requirement) and every
// `ap/bp.add(i)` stays in bounds: `i + 16 <= n`, `i + 8 <= n` and
// `i < n` guard each loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(ap.add(i + 8)),
            _mm256_loadu_ps(bp.add(i + 8)),
            acc1,
        );
        i += 16;
    }
    while i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        i += 8;
    }
    let acc = _mm256_add_ps(acc0, acc1);
    // horizontal sum: (lo + hi) then pairwise
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps(acc, 1);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    let mut total = _mm_cvtss_f32(s);
    while i < n {
        total += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    total
}

/// `y[j] += alpha * x[j]` — the attention context update.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2_fma() {
        // SAFETY(invariant: cpuid probe confirmed AVX2+FMA and lengths were asserted)
        // Satisfies `axpy_avx`'s `#[target_feature]` contract; the length
        // equality it indexes by was just asserted.
        unsafe { axpy_avx(alpha, x, y) };
        return;
    }
    for (o, &v) in y.iter_mut().zip(x.iter()) {
        *o += alpha * v;
    }
}

// SAFETY(invariant: unsafe solely for `#[target_feature]` — caller-verified AVX2+FMA)
// Unaligned loads/stores via `loadu`/`storeu`; `xp/yp.add(j)` bounded by
// `j + 8 <= n` / `j < n` with `x.len() == y.len() == n` asserted by the
// caller.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn axpy_avx(alpha: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let av = _mm256_set1_ps(alpha);
    let mut j = 0usize;
    while j + 8 <= n {
        let acc = _mm256_fmadd_ps(av, _mm256_loadu_ps(xp.add(j)), _mm256_loadu_ps(yp.add(j)));
        _mm256_storeu_ps(yp.add(j), acc);
        j += 8;
    }
    while j < n {
        *yp.add(j) += alpha * *xp.add(j);
        j += 1;
    }
}

/// Dot product of an `f32` query against an [`F16`]-stored row, widening
/// each half on the fly. Fixed k-ascending accumulation order; the F16C
/// fast path and the scalar fallback widen identically (the conversion is
/// exact), so both produce the same reduction inputs.
#[inline]
pub fn dot_f16(a: &[f32], b: &[F16]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f16: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_f16c() {
        // SAFETY(invariant: `use_f16c()` returned true and lengths were asserted equal)
        // The one-time cpuid probe confirmed F16C+AVX2+FMA on this host —
        // `dot_f16_avx`'s `#[target_feature]` contract holds.
        return unsafe { dot_f16_avx(a, b) };
    }
    dot_f16_portable(a, b)
}

fn dot_f16_portable(a: &[f32], b: &[F16]) -> f32 {
    // Mirrors `dot_portable`: four accumulator chains, fixed combine order.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let (x, y) = (&a[i * 4..i * 4 + 4], &b[i * 4..i * 4 + 4]);
        acc[0] += x[0] * y[0].to_f32();
        acc[1] += x[1] * y[1].to_f32();
        acc[2] += x[2] * y[2].to_f32();
        acc[3] += x[3] * y[3].to_f32();
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i].to_f32();
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

// SAFETY(invariant: unsafe solely for `#[target_feature]` — caller-verified F16C+AVX2+FMA)
// `F16` is `#[repr(transparent)]` over `u16`, so `bp` casts to
// `*const __m128i` loads of 8 halfs are layout-valid; all loads are
// unaligned (`loadu`) and `ap/bp.add(i)` stays in bounds: `i + 8 <= n`
// and `i < n` guard each loop, with `a.len() == b.len() == n` asserted
// by the caller.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn dot_f16_avx(a: &[f32], b: &[F16]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len();
    let (ap, bp) = (a.as_ptr(), b.as_ptr() as *const u16);
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let h0 = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i) as *const __m128i));
        let h1 = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i + 8) as *const __m128i));
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), h0, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i + 8)), h1, acc1);
        i += 16;
    }
    while i + 8 <= n {
        let h = _mm256_cvtph_ps(_mm_loadu_si128(bp.add(i) as *const __m128i));
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), h, acc0);
        i += 8;
    }
    let acc = _mm256_add_ps(acc0, acc1);
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps(acc, 1);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    let mut total = _mm_cvtss_f32(s);
    while i < n {
        total += *ap.add(i) * f16_to_f32_scalar(*bp.add(i));
        i += 1;
    }
    total
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn f16_to_f32_scalar(bits: u16) -> f32 {
    F16::from_bits(bits).to_f32()
}

/// `y[j] += alpha * x[j]` where `x` is stored as [`F16`] — the attention
/// context update against an f16 value row.
#[inline]
pub fn axpy_f16(alpha: f32, x: &[F16], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy_f16: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_f16c() {
        // SAFETY(invariant: cpuid probe confirmed F16C+AVX2+FMA and lengths were asserted)
        // Satisfies `axpy_f16_avx`'s `#[target_feature]` contract; the
        // length equality it indexes by was just asserted.
        unsafe { axpy_f16_avx(alpha, x, y) };
        return;
    }
    for (o, &v) in y.iter_mut().zip(x.iter()) {
        *o += alpha * v.to_f32();
    }
}

// SAFETY(invariant: unsafe solely for `#[target_feature]` — caller-verified F16C+AVX2+FMA)
// `F16` is `#[repr(transparent)]` over `u16` so the `__m128i` loads of 8
// halfs are layout-valid; unaligned loads/stores via `loadu`/`storeu`;
// `xp/yp.add(j)` bounded by `j + 8 <= n` / `j < n` with
// `x.len() == y.len() == n` asserted by the caller.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn axpy_f16_avx(alpha: f32, x: &[F16], y: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = x.len();
    let (xp, yp) = (x.as_ptr() as *const u16, y.as_mut_ptr());
    let av = _mm256_set1_ps(alpha);
    let mut j = 0usize;
    while j + 8 <= n {
        let xv = _mm256_cvtph_ps(_mm_loadu_si128(xp.add(j) as *const __m128i));
        let acc = _mm256_fmadd_ps(av, xv, _mm256_loadu_ps(yp.add(j)));
        _mm256_storeu_ps(yp.add(j), acc);
        j += 8;
    }
    while j < n {
        *yp.add(j) += alpha * f16_to_f32_scalar(*xp.add(j));
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32) * 0.25 - 3.0).collect();
        let b: Vec<f32> = (0..37).map(|i| 1.5 - (i as f32) * 0.125).collect();
        let naive: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-3);
    }

    #[test]
    fn dot_is_reproducible() {
        let a: Vec<f32> = (0..100).map(|i| ((i * 37) % 11) as f32 * 0.3).collect();
        let b: Vec<f32> = (0..100).map(|i| ((i * 13) % 7) as f32 * 0.7).collect();
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn axpy_matches_naive() {
        let x: Vec<f32> = (0..23).map(|i| i as f32 * 0.5).collect();
        let mut y: Vec<f32> = (0..23).map(|i| 10.0 - i as f32).collect();
        let mut expect = y.clone();
        for (e, &v) in expect.iter_mut().zip(&x) {
            *e += 2.0 * v;
        }
        axpy(2.0, &x, &mut y);
        for (a, e) in y.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-5);
        }
    }

    #[test]
    fn dot_f16_matches_f32_dot_on_exact_halves() {
        // Values exactly representable in f16 (small integers / quarters),
        // so widening introduces no error and both dots agree tightly.
        let a: Vec<f32> = (0..41).map(|i| (i % 9) as f32 * 0.25 - 1.0).collect();
        let bf: Vec<f32> = (0..41).map(|i| (i % 7) as f32 * 0.5 - 1.5).collect();
        let bh: Vec<F16> = bf.iter().map(|&v| F16::from_f32(v)).collect();
        assert!((dot_f16(&a, &bh) - dot(&a, &bf)).abs() < 1e-4);
    }

    #[test]
    fn axpy_f16_matches_naive() {
        let xf: Vec<f32> = (0..23).map(|i| i as f32 * 0.5).collect();
        let xh: Vec<F16> = xf.iter().map(|&v| F16::from_f32(v)).collect();
        let mut y: Vec<f32> = (0..23).map(|i| 10.0 - i as f32).collect();
        let mut expect = y.clone();
        for (e, &v) in expect.iter_mut().zip(&xf) {
            *e += 2.0 * v;
        }
        axpy_f16(2.0, &xh, &mut y);
        for (a, e) in y.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-5);
        }
    }
}

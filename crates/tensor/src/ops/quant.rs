//! Quantization and dtype-conversion kernels: per-row symmetric int8
//! weight quantization, the int8×int8 GEMM the decode path runs on, and
//! f16↔f32 storage conversion.
//!
//! ## Scheme
//!
//! Weights are quantized **once at load time**, per output row, to
//! symmetric int8 codes with one `f32` scale per row
//! (`w[n][k] ≈ q[n][k] * scale[n]`, `scale = max|w[n]| / 127`).
//! Activations stay `f32` end to end and are quantized **dynamically
//! inside the kernel**, one row at a time, with their own scale — so no
//! calibration pass is needed and accuracy follows each token's actual
//! activation range. The integer dot product is computed exactly (i16
//! pair-sums widened to i32), and the result is rescaled once:
//! `out[m][n] = a_scale[m] * w_scale[n] * Σ qa[m][k]·qw[n][k]`.
//!
//! ## Determinism
//!
//! Integer accumulation is associative, so the int8 GEMM is bit-identical
//! for *any* thread count and for the AVX2 vs portable kernels alike —
//! a stronger guarantee than the f32 path (which promises thread-count
//! invariance only, via fixed-order accumulation). The dynamic activation
//! quantization uses `round` (half away from zero) and is itself a pure
//! function of the input row.
//!
//! ## Overflow safety
//!
//! The AVX2 kernel uses `maddubs` (u8×i8 → i16 pair sums): with both
//! operands bounded by 127 the worst pair sum is `2·127·127 = 32258 <
//! i16::MAX`, so the saturating instruction never saturates. Pair sums are
//! widened via `madd` into i32 lanes; `K` would need to exceed ~1M before
//! an i32 lane could overflow, far beyond any model dimension here.

use crate::dtype::{Element, F16};
use crate::par;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Minimum output columns per pool task for the decode (`m == 1`) path —
/// matches the f32 `matmul_transb` split so the two variants schedule
/// comparably.
const MIN_COLS_PER_THREAD: usize = 128;
/// Minimum output rows per pool task for the batched path.
const MIN_ROWS_PER_THREAD: usize = 8;

/// A per-row symmetrically quantized weight matrix in output-major
/// `[N, K]` layout (row `n` holds the weights producing output `n`), as
/// consumed by [`qmatmul_transb`].
///
/// Built once at model-load time by [`quantize_per_row`]; the codes live
/// in a `Tensor<i8>` (sharing the generic storage machinery) and the
/// per-row scales ride alongside.
#[derive(Clone, Debug)]
pub struct QuantizedMatrix {
    q: Tensor<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Output rows (`N`).
    pub fn n(&self) -> usize {
        self.q.dims()[0]
    }

    /// Inner dimension (`K`).
    pub fn k(&self) -> usize {
        self.q.dims()[1]
    }

    /// The int8 codes, shape `[N, K]`.
    pub fn codes(&self) -> &Tensor<i8> {
        &self.q
    }

    /// Per-output-row dequantization scales, length `N`.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Assemble from parts (codes must be rank-2, one scale per row).
    ///
    /// # Panics
    /// Panics on rank or length mismatch.
    pub fn from_parts(q: Tensor<i8>, scales: Vec<f32>) -> QuantizedMatrix {
        assert_eq!(q.rank(), 2, "QuantizedMatrix codes must be [N, K]");
        assert_eq!(
            q.dims()[0],
            scales.len(),
            "QuantizedMatrix needs one scale per output row"
        );
        QuantizedMatrix { q, scales }
    }
}

/// Quantize an `f32` weight matrix `[N, K]` to per-row symmetric int8.
///
/// Each row is scaled by `max|row| / 127` and rounded half-away-from-zero;
/// an all-zero row gets scale 0 and all-zero codes. Rows are quantized in
/// parallel over the pool, but each row is a pure function of its input,
/// so the result is thread-count independent.
pub fn quantize_per_row(w: &Tensor) -> QuantizedMatrix {
    assert_eq!(w.rank(), 2, "quantize_per_row expects [N, K]");
    let (n, k) = (w.dims()[0], w.dims()[1]);
    let wd = w.data();
    let mut scales = vec![0.0f32; n];
    for (row, s) in scales.iter_mut().enumerate() {
        let amax =
            ratatouille_util::accum::max_abs_f32(wd[row * k..(row + 1) * k].iter().copied());
        *s = amax / 127.0;
    }
    let mut codes = vec![0i8; n * k];
    // SAFETY(disjoint: codes[range] — workers receive non-overlapping row chunks)
    par::parallel_rows_mut(&mut codes, n, k, MIN_ROWS_PER_THREAD, |range, chunk| {
        for (i, row) in range.clone().enumerate() {
            let scale = scales[row];
            let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
            let src = &wd[row * k..(row + 1) * k];
            let dst = &mut chunk[i * k..(i + 1) * k];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = (v * inv).round().clamp(-127.0, 127.0) as i8;
            }
        }
    });
    QuantizedMatrix {
        q: Tensor::from_parts(Shape(vec![n, k]), codes),
        scales,
    }
}

/// Reconstruct the `f32` approximation of a quantized matrix (`[N, K]`).
pub fn dequantize(m: &QuantizedMatrix) -> Tensor {
    let (n, k) = (m.n(), m.k());
    let codes = m.q.data();
    let mut out = vec![0.0f32; n * k];
    for row in 0..n {
        let s = m.scales[row];
        for col in 0..k {
            out[row * k + col] = codes[row * k + col] as f32 * s;
        }
    }
    Tensor::from_parts(Shape(vec![n, k]), out)
}

/// Narrow an `f32` tensor to [`F16`] storage (round-to-nearest-even).
pub fn to_f16(t: &Tensor) -> Tensor<F16> {
    let data = t.data().iter().map(|&v| F16::from_f32(v)).collect();
    Tensor::from_parts(t.shape().clone(), data)
}

/// Widen an [`F16`] tensor back to `f32` (exact).
pub fn to_f32(t: &Tensor<F16>) -> Tensor {
    let data = t.data().iter().map(|&v| v.to_f32()).collect();
    Tensor::from_parts(t.shape().clone(), data)
}

/// `a [M, K] × wᵀ [N, K] → [M, N]` with int8 weights: the quantized
/// counterpart of `matmul_transb`, used by the int8 decode path.
///
/// Activations are quantized dynamically per row (scale `max|row|/127`),
/// the inner product runs entirely in integers, and one `f32` rescale per
/// output element applies both scales. `m == 1` (single-token decode)
/// splits output columns across the pool; batched inputs split rows.
pub fn qmatmul_transb(a: &Tensor, w: &QuantizedMatrix) -> Tensor {
    assert_eq!(a.rank(), 2, "qmatmul_transb expects a [M, K] activation");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    assert_eq!(
        k,
        w.k(),
        "qmatmul_transb: inner dims differ ({k} vs {})",
        w.k()
    );
    let n = w.n();
    let started = obs::Clock::now();
    let ad = a.data();
    let codes = w.q.data();
    let scales = &w.scales;

    // Quantize every activation row once, up front.
    let mut qa = vec![0i8; m * k];
    let mut a_scales = vec![0.0f32; m];
    for (row, s) in a_scales.iter_mut().enumerate() {
        *s = quantize_row_into(&ad[row * k..(row + 1) * k], &mut qa[row * k..(row + 1) * k]);
    }

    let mut out = vec![0.0f32; m * n];
    if m == 1 {
        // Decode path: one activation row, split the output columns.
        let qrow = &qa[..k];
        let a_scale = a_scales[0];
        // SAFETY(disjoint: out[range] — column spans of the single output row never overlap)
        par::parallel_rows_mut(&mut out, n, 1, MIN_COLS_PER_THREAD, |range, chunk| {
            qgemv(qrow, codes, k, range.start, scales, a_scale, chunk);
        });
    } else {
        // SAFETY(disjoint: out[range] — workers receive non-overlapping row chunks)
        par::parallel_rows_mut(&mut out, m, n, MIN_ROWS_PER_THREAD, |range, chunk| {
            for (i, row) in range.clone().enumerate() {
                let qrow = &qa[row * k..(row + 1) * k];
                let a_scale = a_scales[row];
                let dst = &mut chunk[i * n..(i + 1) * n];
                qgemv(qrow, codes, k, 0, scales, a_scale, dst);
            }
        });
    }
    obs::static_histogram!("tensor_qmatmul_ns").observe(started.elapsed_ns());
    Tensor::from_parts(Shape(vec![m, n]), out)
}

/// Quantize one activation row to symmetric int8, returning its scale.
fn quantize_row_into(src: &[f32], dst: &mut [i8]) -> f32 {
    let amax = ratatouille_util::accum::max_abs_f32(src.iter().copied());
    if amax == 0.0 {
        dst.fill(0);
        return 0.0;
    }
    let scale = amax / 127.0;
    let inv = 1.0 / scale;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v * inv).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Exact int8 dot product with runtime AVX2 dispatch. Integer addition is
/// associative, so the SIMD and portable paths return identical values.
///
/// One quantized activation row against a contiguous block of weight
/// columns: `out[i] = a_scale * scales[col0+i] * (qrow · codes[col0+i])`.
///
/// This is the int8 GEMM's whole inner sweep. It dispatches the AVX2
/// probe **once per block** and runs every column dot inside a single
/// `#[target_feature]` region, so the per-column dot inlines — calling
/// [`dot_i8`] per column instead costs an opaque function call plus an
/// atomic feature check per 128-element dot, which halves throughput at
/// transformer widths.
fn qgemv(qrow: &[i8], codes: &[i8], k: usize, col0: usize, scales: &[f32], a_scale: f32, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if crate::ops::simd::use_avx2() {
        // SAFETY(invariant: `use_avx2()` returned true on this host)
        // The one-time cpuid probe confirmed AVX2 — `qgemv_avx2`'s
        // `#[target_feature]` contract holds.
        unsafe { qgemv_avx2(qrow, codes, k, col0, scales, a_scale, out) };
        return;
    }
    for (i, o) in out.iter_mut().enumerate() {
        let col = col0 + i;
        let acc = dot_i8_portable(qrow, &codes[col * k..(col + 1) * k]);
        *o = a_scale * scales[col] * acc as f32;
    }
}

// SAFETY(invariant: unsafe solely for `#[target_feature]` — caller-verified AVX2)
// Callers must have verified AVX2 via `use_avx2()`. Slice indexing stays
// bounds-checked; the per-column `dot_i8_avx2` inlines here because this
// frame already has the `avx2` feature enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qgemv_avx2(
    qrow: &[i8],
    codes: &[i8],
    k: usize,
    col0: usize,
    scales: &[f32],
    a_scale: f32,
    out: &mut [f32],
) {
    // Columns in pairs: one sweep over the activation row feeds two
    // weight columns, so each `|x|`/sign computation is shared and the
    // two integer accumulator chains overlap in the pipeline. Integer
    // adds are associative, so the pairing cannot change any result.
    let mut i = 0usize;
    while i + 2 <= out.len() {
        let col = col0 + i;
        // SAFETY(invariant: same-feature frame and both slices are exactly `k` long)
        // See the function-level comment; the column slices match `qrow`.
        let (a0, a1) = unsafe {
            dot2_i8_avx2(
                qrow,
                &codes[col * k..(col + 1) * k],
                &codes[(col + 1) * k..(col + 2) * k],
            )
        };
        out[i] = a_scale * scales[col] * a0 as f32;
        out[i + 1] = a_scale * scales[col + 1] * a1 as f32;
        i += 2;
    }
    if i < out.len() {
        let col = col0 + i;
        // SAFETY(invariant: as above — one trailing column)
        let acc = unsafe { dot_i8_avx2(qrow, &codes[col * k..(col + 1) * k]) };
        out[i] = a_scale * scales[col] * acc as f32;
    }
}

// Numerics: identical to two independent `dot_i8_avx2` calls — the
// shared `|x|`/sign-transfer operands are recomputed bit-identically and
// integer accumulation is exact in any order.
//
// SAFETY(invariant: unsafe solely for `#[target_feature]` — see `dot_i8_avx2`)
// The same bounds argument applies to both `y0` and `y1` (each `x.len()`
// long, guarded by `i + 32 <= n` and the scalar tail).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn dot2_i8_avx2(x: &[i8], y0: &[i8], y1: &[i8]) -> (i32, i32) {
    use std::arch::x86_64::*;
    let n = x.len();
    let (xp, y0p, y1p) = (x.as_ptr(), y0.as_ptr(), y1.as_ptr());
    let ones = _mm256_set1_epi16(1);
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 32 <= n {
        let vx = _mm256_loadu_si256(xp.add(i) as *const __m256i);
        let ax = _mm256_sign_epi8(vx, vx); // |x| as u8 lanes, shared
        let v0 = _mm256_loadu_si256(y0p.add(i) as *const __m256i);
        let v1 = _mm256_loadu_si256(y1p.add(i) as *const __m256i);
        let p0 = _mm256_maddubs_epi16(ax, _mm256_sign_epi8(v0, vx));
        let p1 = _mm256_maddubs_epi16(ax, _mm256_sign_epi8(v1, vx));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(p0, ones));
        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(p1, ones));
        i += 32;
    }
    let hsum = |acc: __m256i| -> i32 {
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256(acc, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0100_1110));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b1011_0001));
        _mm_cvtsi128_si32(s)
    };
    let (mut t0, mut t1) = (hsum(acc0), hsum(acc1));
    while i < n {
        let xv = *xp.add(i) as i32;
        t0 += xv * *y0p.add(i) as i32;
        t1 += xv * *y1p.add(i) as i32;
        i += 1;
    }
    (t0, t1)
}

/// Domain: operands must lie in `[-127, 127]` — the sign-transfer trick in
/// the AVX2 kernel cannot negate `-128`. Every quantizer in this module
/// clamps to that symmetric range.
///
/// Production code goes through [`qgemv`] (which amortizes the dispatch
/// over a whole column block); this single-dot wrapper remains as the
/// harness for the AVX2-vs-portable equivalence tests.
#[cfg(test)]
fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    debug_assert_eq!(x.len(), y.len());
    debug_assert!(x.iter().chain(y).all(|&v| v != i8::MIN));
    #[cfg(target_arch = "x86_64")]
    if crate::ops::simd::use_avx2() {
        // SAFETY(invariant: `use_avx2()` returned true and slice lengths are equal)
        // The one-time cpuid probe confirmed AVX2 — `dot_i8_avx2`'s
        // `#[target_feature]` contract holds. Equal slice lengths hold by
        // construction (both are K-length rows), checked by the
        // debug_assert above.
        return unsafe { dot_i8_avx2(x, y) };
    }
    dot_i8_portable(x, y)
}

fn dot_i8_portable(x: &[i8], y: &[i8]) -> i32 {
    let mut acc = 0i32;
    for (&a, &b) in x.iter().zip(y) {
        acc += a as i32 * b as i32;
    }
    acc
}

// Numerics: `maddubs` computes u8×i8 pair sums with i16 saturation; we
// feed it `|x|` (u8, ≤127) and `sign(x)·y` (i8, |·|≤127), so each pair sum
// is ≤ 2·127·127 = 32258 < i16::MAX — never saturates, and the product
// `|x|·(sign(x)·y) = x·y` is exact. `sign(x) == 0` zeroes both operands,
// matching `x == 0 ⇒ x·y == 0`.
//
// SAFETY(invariant: unsafe solely for `#[target_feature]` — caller-verified AVX2)
// All loads are unaligned (`loadu`) and every `x/y.as_ptr().add(i)` stays
// in bounds: `i + 32 <= n` guards the vector loop and `i < n` the scalar
// tail, with `x.len() == y.len() == n` guaranteed by the caller.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn dot_i8_avx2(x: &[i8], y: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = x.len();
    let (xp, yp) = (x.as_ptr(), y.as_ptr());
    let ones = _mm256_set1_epi16(1);
    let mut acc = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 32 <= n {
        let vx = _mm256_loadu_si256(xp.add(i) as *const __m256i);
        let vy = _mm256_loadu_si256(yp.add(i) as *const __m256i);
        let ax = _mm256_sign_epi8(vx, vx); // |x| as u8 lanes
        let sy = _mm256_sign_epi8(vy, vx); // y with x's sign transferred
        let pairs = _mm256_maddubs_epi16(ax, sy); // exact i16 pair sums
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
        i += 32;
    }
    // horizontal sum of the eight i32 lanes
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256(acc, 1);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b0100_1110));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b1011_0001));
    let mut total = _mm_cvtsi128_si32(s);
    while i < n {
        total += *xp.add(i) as i32 * *yp.add(i) as i32;
        i += 1;
    }
    total
}

/// Dot of an `f32` query against raw i8 codes widened to their integer
/// values (no scale — the correctness fallback for an i8 KV cache).
pub(crate) fn dot_f32_i8(a: &[f32], b: &[i8]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_f32_i8: length mismatch");
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let (x, y) = (&a[i * 4..i * 4 + 4], &b[i * 4..i * 4 + 4]);
        acc[0] += x[0] * y[0] as f32;
        acc[1] += x[1] * y[1] as f32;
        acc[2] += x[2] * y[2] as f32;
        acc[3] += x[3] * y[3] as f32;
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i] as f32;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// `y[j] += alpha * x[j] as f32` over raw i8 codes (correctness fallback,
/// paired with [`dot_f32_i8`]).
pub(crate) fn axpy_i8_into_f32(alpha: f32, x: &[i8], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy_i8_into_f32: length mismatch");
    for (o, &v) in y.iter_mut().zip(x.iter()) {
        *o += alpha * v as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn toy_matrix(n: usize, k: usize) -> Tensor {
        let data: Vec<f32> = (0..n * k)
            .map(|i| ((i * 37 + 11) % 97) as f32 * 0.07 - 3.2)
            .collect();
        Tensor::from_vec(data, &[n, k]).unwrap()
    }

    #[test]
    fn quantize_dequantize_bounded_error() {
        let w = toy_matrix(13, 40);
        let qm = quantize_per_row(&w);
        let back = dequantize(&qm);
        for row in 0..13 {
            let amax = ratatouille_util::accum::max_abs_f32(
                w.data()[row * 40..(row + 1) * 40].iter().copied(),
            );
            let bound = amax / 127.0 * 0.5 + 1e-6; // half a quantization step
            for col in 0..40 {
                let err = (w.at(&[row, col]) - back.at(&[row, col])).abs();
                assert!(err <= bound, "error {err} > bound {bound} at [{row},{col}]");
            }
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero() {
        let w = Tensor::zeros(&[2, 8]);
        let qm = quantize_per_row(&w);
        assert_eq!(qm.scales(), &[0.0, 0.0]);
        assert!(qm.codes().data().iter().all(|&c| c == 0));
        assert_eq!(dequantize(&qm), w);
    }

    #[test]
    fn qmatmul_close_to_f32_reference() {
        let a = toy_matrix(3, 64);
        let w = toy_matrix(17, 64);
        let qm = quantize_per_row(&w);
        let exact = ops::matmul_transb(&a, &w);
        let quant = qmatmul_transb(&a, &qm);
        assert_eq!(quant.dims(), &[3, 17]);
        // Rigorous per-element bound: |a·w − â·ŵ| ≤ Σ_k |a_k|·εw + (|w_k|+εw)·εa
        // where ε is half a quantization step for the respective row.
        let half_step = |row: &[f32]| {
            ratatouille_util::accum::max_abs_f32(row.iter().copied()) / 127.0 * 0.5
        };
        for row in 0..3 {
            let arow = &a.data()[row * 64..(row + 1) * 64];
            let ea = half_step(arow);
            for col in 0..17 {
                let wrow = &w.data()[col * 64..(col + 1) * 64];
                let ew = half_step(wrow);
                let bound: f32 = arow
                    .iter()
                    .zip(wrow)
                    .map(|(&av, &wv)| av.abs() * ew + (wv.abs() + ew) * ea)
                    .sum::<f32>()
                    + 1e-4;
                let err = (quant.at(&[row, col]) - exact.at(&[row, col])).abs();
                assert!(err <= bound, "err {err} > bound {bound} at [{row},{col}]");
            }
        }
    }

    #[test]
    fn qmatmul_decode_row_matches_batched() {
        // The m == 1 column-split path must agree exactly with the row
        // path (same integer math, different scheduling).
        let a = toy_matrix(2, 48);
        let w = toy_matrix(9, 48);
        let qm = quantize_per_row(&w);
        let both = qmatmul_transb(&a, &qm);
        let row0 = qmatmul_transb(
            &Tensor::from_vec(a.data()[..48].to_vec(), &[1, 48]).unwrap(),
            &qm,
        );
        for col in 0..9 {
            assert_eq!(row0.at(&[0, col]).to_bits(), both.at(&[0, col]).to_bits());
        }
    }

    #[test]
    fn dot_i8_simd_matches_portable() {
        for len in [0, 1, 31, 32, 33, 64, 100, 257] {
            // full symmetric domain [-127, 127] (−128 is excluded by contract)
            let x: Vec<i8> = (0..len)
                .map(|i| (((i * 83 + 5) % 255) as i32 - 127) as i8)
                .collect();
            let y: Vec<i8> = (0..len)
                .map(|i| (((i * 29 + 170) % 255) as i32 - 127) as i8)
                .collect();
            assert_eq!(dot_i8(&x, &y), dot_i8_portable(&x, &y), "len {len}");
        }
    }

    #[test]
    fn f16_round_trip_tensor() {
        let t = toy_matrix(4, 5);
        let h = to_f16(&t);
        assert_eq!(h.dims(), &[4, 5]);
        let back = to_f32(&h);
        for (a, b) in t.data().iter().zip(back.data()) {
            // f16 has ~3 decimal digits; these values are < 8 in magnitude
            assert!((a - b).abs() <= 4.0 * 2f32.powi(-11), "{a} vs {b}");
        }
    }
}

//! Matrix multiplication kernels (2-D and batched 3-D): cache-blocked,
//! panel-packed, and row-parallel on the persistent worker pool.
//!
//! The 2-D `matmul` packs the B operand once per call into `KC × NR`
//! panels (shared read-only across workers), then each worker sweeps its
//! row range with a register-blocked microkernel — 8-lane FMA when the
//! host has AVX2 (see [`super::simd`]), otherwise a k-unrolled portable
//! loop the auto-vectorizer handles. `matmul_transa` reuses the same
//! kernel after a blocked transpose of A; `matmul_transb` and the `bmm_*`
//! family run dot-product / row-accumulate kernels over the unpacked
//! operands (their K/N extents are too small for packing to pay).
//!
//! **Determinism contract:** blocking parameters are fixed constants,
//! every output element accumulates over `k` in ascending order within
//! one worker, and chunk boundaries depend only on shape and
//! `par::num_threads()` — never on scheduling — so results are
//! byte-identical for any thread count. Dense paths are branch-free (no
//! `a == 0.0` skips), which is both faster and what keeps the microkernel
//! vectorizable.

use crate::ops::simd;
use crate::par::{parallel_chunks, parallel_rows_mut};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Minimum rows per thread before a parallel launch pays for itself.
const MIN_ROWS_PER_THREAD: usize = 8;
/// Minimum output columns per thread for the single-row (decode) path.
const MIN_COLS_PER_THREAD: usize = 128;
/// K-blocking: one packed `KC × NR` panel is 16 KiB — L1-resident.
const KC: usize = 256;
/// Microkernel width: two 8-lane vectors.
const NR: usize = 16;
/// Microkernel height (rows of A per register block).
const MR: usize = 4;
/// Below this many output rows, packing B cannot amortize; use the
/// unpacked row-accumulate kernel (the incremental-decode path).
const SMALL_M: usize = 8;
/// Tile edge for the blocked transpose.
const TRANSPOSE_TILE: usize = 32;

// ---------------------------------------------------------------------------
// B-panel packing
// ---------------------------------------------------------------------------

/// B `[K, N]` repacked as `KC × NR` panels: for each k-block, the full
/// `NR`-wide column panels are stored contiguously (panel-major, rows of
/// `NR` within a panel). The `n % NR` remainder columns stay unpacked and
/// are handled from the raw operand.
struct PackedB {
    data: Vec<f32>,
    /// `(k0, kc, base offset into data)` per k-block, ascending `k0`.
    k_blocks: Vec<(usize, usize, usize)>,
    /// Number of full `NR`-wide panels (`n / NR`).
    n_full: usize,
}

fn pack_b(b: &[f32], k: usize, n: usize) -> PackedB {
    let n_full = n / NR;
    let mut data = Vec::with_capacity(k * n_full * NR);
    let mut k_blocks = Vec::with_capacity(k.div_ceil(KC));
    let mut k0 = 0usize;
    while k0 < k {
        let kc = KC.min(k - k0);
        k_blocks.push((k0, kc, data.len()));
        for nb in 0..n_full {
            for kk in 0..kc {
                let src = (k0 + kk) * n + nb * NR;
                data.extend_from_slice(&b[src..src + NR]);
            }
        }
        k0 += kc;
    }
    PackedB {
        data,
        k_blocks,
        n_full,
    }
}

// ---------------------------------------------------------------------------
// Microkernels
// ---------------------------------------------------------------------------

/// Portable panel microkernel: one row of A against one `kc × NR` panel,
/// accumulating into an `NR`-wide output slice. `k` ascends left-to-right
/// so the accumulation order matches the AVX variants element-for-element.
fn mk_row_portable(a: &[f32], panel: &[f32], kc: usize, o: &mut [f32]) {
    let o = &mut o[..NR];
    let mut kk = 0usize;
    while kk + 4 <= kc {
        let (a0, a1, a2, a3) = (a[kk], a[kk + 1], a[kk + 2], a[kk + 3]);
        let b0 = &panel[kk * NR..kk * NR + NR];
        let b1 = &panel[(kk + 1) * NR..(kk + 1) * NR + NR];
        let b2 = &panel[(kk + 2) * NR..(kk + 2) * NR + NR];
        let b3 = &panel[(kk + 3) * NR..(kk + 3) * NR + NR];
        for j in 0..NR {
            o[j] = (((o[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        }
        kk += 4;
    }
    while kk < kc {
        let av = a[kk];
        let b0 = &panel[kk * NR..kk * NR + NR];
        for j in 0..NR {
            o[j] += av * b0[j];
        }
        kk += 1;
    }
}

/// AVX2+FMA microkernel: `MR = 4` rows of A (row stride `lda`) against one
/// `kc × NR` panel, accumulating into 4 output rows (row stride `ldo`).
// SAFETY(invariant: caller-verified AVX2+FMA plus in-bounds non-aliasing pointers)
// Callers must have verified AVX2+FMA via `use_avx2_fma()`
// (`#[target_feature]`) and pass `a` valid for reads over 4 rows of
// stride `lda` × `kc` columns, `panel` valid for `kc * NR` reads, and
// `o` valid for read+write over 4 rows of stride `ldo` × NR columns,
// not aliasing `a`/`panel`. All accesses are unaligned (`loadu`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mk_avx_4x16(a: *const f32, lda: usize, panel: *const f32, kc: usize, o: *mut f32, ldo: usize) {
    use std::arch::x86_64::*;
    let mut acc00 = _mm256_loadu_ps(o);
    let mut acc01 = _mm256_loadu_ps(o.add(8));
    let mut acc10 = _mm256_loadu_ps(o.add(ldo));
    let mut acc11 = _mm256_loadu_ps(o.add(ldo + 8));
    let mut acc20 = _mm256_loadu_ps(o.add(2 * ldo));
    let mut acc21 = _mm256_loadu_ps(o.add(2 * ldo + 8));
    let mut acc30 = _mm256_loadu_ps(o.add(3 * ldo));
    let mut acc31 = _mm256_loadu_ps(o.add(3 * ldo + 8));
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(panel.add(kk * NR));
        let b1 = _mm256_loadu_ps(panel.add(kk * NR + 8));
        let a0 = _mm256_set1_ps(*a.add(kk));
        acc00 = _mm256_fmadd_ps(a0, b0, acc00);
        acc01 = _mm256_fmadd_ps(a0, b1, acc01);
        let a1 = _mm256_set1_ps(*a.add(lda + kk));
        acc10 = _mm256_fmadd_ps(a1, b0, acc10);
        acc11 = _mm256_fmadd_ps(a1, b1, acc11);
        let a2 = _mm256_set1_ps(*a.add(2 * lda + kk));
        acc20 = _mm256_fmadd_ps(a2, b0, acc20);
        acc21 = _mm256_fmadd_ps(a2, b1, acc21);
        let a3 = _mm256_set1_ps(*a.add(3 * lda + kk));
        acc30 = _mm256_fmadd_ps(a3, b0, acc30);
        acc31 = _mm256_fmadd_ps(a3, b1, acc31);
    }
    _mm256_storeu_ps(o, acc00);
    _mm256_storeu_ps(o.add(8), acc01);
    _mm256_storeu_ps(o.add(ldo), acc10);
    _mm256_storeu_ps(o.add(ldo + 8), acc11);
    _mm256_storeu_ps(o.add(2 * ldo), acc20);
    _mm256_storeu_ps(o.add(2 * ldo + 8), acc21);
    _mm256_storeu_ps(o.add(3 * ldo), acc30);
    _mm256_storeu_ps(o.add(3 * ldo + 8), acc31);
}

/// AVX2+FMA microkernel for a single row (the `m % MR` remainder). Each
/// output element's FMA chain is identical to its chain in
/// [`mk_avx_4x16`], so row grouping never changes results.
// SAFETY(invariant: the `mk_avx_4x16` contract restricted to one row)
// Caller verified AVX2+FMA, `a` valid for `kc` reads, `panel` for
// `kc * NR` reads, `o` for NR non-aliasing read+writes; unaligned access
// only.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn mk_avx_1x16(a: *const f32, panel: *const f32, kc: usize, o: *mut f32) {
    use std::arch::x86_64::*;
    let mut acc0 = _mm256_loadu_ps(o);
    let mut acc1 = _mm256_loadu_ps(o.add(8));
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(panel.add(kk * NR));
        let b1 = _mm256_loadu_ps(panel.add(kk * NR + 8));
        let av = _mm256_set1_ps(*a.add(kk));
        acc0 = _mm256_fmadd_ps(av, b0, acc0);
        acc1 = _mm256_fmadd_ps(av, b1, acc1);
    }
    _mm256_storeu_ps(o, acc0);
    _mm256_storeu_ps(o.add(8), acc1);
}

/// Unpacked row-accumulate: `o[0..n] += Σ_k a[kk] · b[kk, 0..n]` for a
/// row-major `b: [k, n]`, `k` ascending. Used where packing cannot pay:
/// tiny `m` (decode) and the per-batch `bmm` kernels.
fn accumulate_row(o: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    debug_assert_eq!(a.len(), k);
    debug_assert!(b.len() >= k * n);
    debug_assert_eq!(o.len(), n);
    #[cfg(target_arch = "x86_64")]
    if simd::use_avx2_fma() {
        // SAFETY(invariant: `use_avx2_fma()` just returned true and the bounds hold)
        // Meets the `#[target_feature]` contract; the debug-asserted
        // bounds (`a.len() == k`, `b.len() >= k*n`, `o.len() == n`) match
        // the slice-derived pointers `accumulate_row_avx` offsets within.
        unsafe { accumulate_row_avx(o, a, b, k, n) };
        return;
    }
    let mut kk = 0usize;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (a[kk], a[kk + 1], a[kk + 2], a[kk + 3]);
        let b0 = &b[kk * n..kk * n + n];
        let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
        let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
        let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
        for j in 0..n {
            o[j] = (((o[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        }
        kk += 4;
    }
    while kk < k {
        let av = a[kk];
        let b0 = &b[kk * n..kk * n + n];
        for j in 0..n {
            o[j] += av * b0[j];
        }
        kk += 1;
    }
}

// SAFETY(invariant: unsafe solely for `#[target_feature]` — borrows carry validity)
// Callers must have verified AVX2+FMA. Pointers derive from the borrowed
// slices, so validity and non-aliasing follow from the borrows; every
// offset is in bounds given `a.len() == k`, `b.len() >= k*n`,
// `o.len() == n` (loops guard with `kk + 4 <= k`, `j + 8 <= n`,
// `j < n`). Unaligned access.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn accumulate_row_avx(o: &mut [f32], a: &[f32], b: &[f32], k: usize, n: usize) {
    use std::arch::x86_64::*;
    let op = o.as_mut_ptr();
    let bp = b.as_ptr();
    let mut kk = 0usize;
    while kk + 4 <= k {
        let a0 = _mm256_set1_ps(a[kk]);
        let a1 = _mm256_set1_ps(a[kk + 1]);
        let a2 = _mm256_set1_ps(a[kk + 2]);
        let a3 = _mm256_set1_ps(a[kk + 3]);
        let r0 = bp.add(kk * n);
        let r1 = bp.add((kk + 1) * n);
        let r2 = bp.add((kk + 2) * n);
        let r3 = bp.add((kk + 3) * n);
        let mut j = 0usize;
        while j + 8 <= n {
            let mut v = _mm256_loadu_ps(op.add(j));
            v = _mm256_fmadd_ps(a0, _mm256_loadu_ps(r0.add(j)), v);
            v = _mm256_fmadd_ps(a1, _mm256_loadu_ps(r1.add(j)), v);
            v = _mm256_fmadd_ps(a2, _mm256_loadu_ps(r2.add(j)), v);
            v = _mm256_fmadd_ps(a3, _mm256_loadu_ps(r3.add(j)), v);
            _mm256_storeu_ps(op.add(j), v);
            j += 8;
        }
        while j < n {
            let mut v = *op.add(j);
            v += a[kk] * *r0.add(j);
            v += a[kk + 1] * *r1.add(j);
            v += a[kk + 2] * *r2.add(j);
            v += a[kk + 3] * *r3.add(j);
            *op.add(j) = v;
            j += 1;
        }
        kk += 4;
    }
    while kk < k {
        let av = _mm256_set1_ps(a[kk]);
        let r0 = bp.add(kk * n);
        let mut j = 0usize;
        while j + 8 <= n {
            let v = _mm256_fmadd_ps(av, _mm256_loadu_ps(r0.add(j)), _mm256_loadu_ps(op.add(j)));
            _mm256_storeu_ps(op.add(j), v);
            j += 8;
        }
        while j < n {
            *op.add(j) += a[kk] * *r0.add(j);
            j += 1;
        }
        kk += 1;
    }
}

/// The packed GEMM inner driver: `out[rows, :] += A[rows, :] @ B` for a
/// worker's row range, sweeping k-blocks (ascending) × panels × rows.
fn gemm_rows_packed(
    rows: std::ops::Range<usize>,
    chunk: &mut [f32],
    a: &[f32],
    lda: usize,
    pb: &PackedB,
    b_raw: &[f32],
    n: usize,
) {
    chunk.fill(0.0);
    #[cfg(target_arch = "x86_64")]
    let avx = simd::use_avx2_fma();
    #[cfg(not(target_arch = "x86_64"))]
    let avx = false;
    let n_edge_start = pb.n_full * NR;
    for &(k0, kc, base) in &pb.k_blocks {
        for nb in 0..pb.n_full {
            let panel = &pb.data[base + nb * kc * NR..base + (nb + 1) * kc * NR];
            let mut r = rows.start;
            while r < rows.end {
                let local = r - rows.start;
                let take = MR.min(rows.end - r);
                #[cfg(target_arch = "x86_64")]
                if avx {
                    // SAFETY(invariant: `avx` held and all microkernel accesses stay in bounds)
                    // `use_avx2_fma()` meets the `#[target_feature]`
                    // contract. `a_ptr` covers `take` (≤ MR) rows of
                    // stride `lda` ending at `(r+take-1)*lda + k0 + kc
                    // <= a.len()`; `panel` holds exactly `kc * NR`
                    // floats; `o_ptr` writes `take` rows of stride `n`
                    // inside `chunk`, the worker's exclusive &mut range.
                    unsafe {
                        let a_ptr = a.as_ptr().add(r * lda + k0);
                        let o_ptr = chunk.as_mut_ptr().add(local * n + nb * NR);
                        if take == MR {
                            mk_avx_4x16(a_ptr, lda, panel.as_ptr(), kc, o_ptr, n);
                        } else {
                            for rr in 0..take {
                                mk_avx_1x16(a_ptr.add(rr * lda), panel.as_ptr(), kc, o_ptr.add(rr * n));
                            }
                        }
                    }
                    r += take;
                    continue;
                }
                let _ = avx;
                for rr in 0..take {
                    let row = r + rr;
                    let a_row = &a[row * lda + k0..row * lda + k0 + kc];
                    let o_row = &mut chunk[(local + rr) * n + nb * NR..(local + rr) * n + nb * NR + NR];
                    mk_row_portable(a_row, panel, kc, o_row);
                }
                r += take;
            }
        }
        // n % NR remainder columns, straight from the raw operand.
        if n_edge_start < n {
            for (local, row) in rows.clone().enumerate() {
                let o_row = &mut chunk[local * n..(local + 1) * n];
                for kk in 0..kc {
                    let av = a[row * lda + k0 + kk];
                    let b_row = &b_raw[(k0 + kk) * n..(k0 + kk) * n + n];
                    for j in n_edge_start..n {
                        o_row[j] += av * b_row[j];
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public kernels
// ---------------------------------------------------------------------------

/// `C = A @ B` for `a: [M,K]`, `b: [K,N]` → `[M,N]`.
///
/// # Panics
/// Panics unless both inputs are rank-2 with matching inner dimension.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul: lhs must be rank-2, got {}", a.shape());
    assert_eq!(b.rank(), 2, "matmul: rhs must be rank-2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul: inner dims differ, {} vs {}",
        a.shape(),
        b.shape()
    );
    let start = obs::Clock::now();
    let out = matmul_raw(a.data(), b.data(), m, k, n);
    let ns = start.elapsed_ns();
    obs::static_histogram!("tensor_matmul_ns").observe(ns);
    let flops = 2 * (m as u64) * (k as u64) * (n as u64);
    obs::static_counter!("tensor_matmul_flops_total").add(flops);
    // flops / ns == GFLOP / s exactly (both carry a factor of 1e9).
    obs::static_gauge!("tensor_matmul_gflops").set(flops as f64 / ns.max(1) as f64);
    Tensor::from_parts(Shape(vec![m, n]), out)
}

/// Kernel body shared by [`matmul`] and [`matmul_transa`].
fn matmul_raw(ad: &[f32], bd: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if m < SMALL_M || n < NR {
        // Packing can't amortize (decode-sized or skinny output): run the
        // unpacked row-accumulate kernel, row-parallel.
        // SAFETY(disjoint: out[rows] — workers receive non-overlapping row chunks of `out`)
        parallel_rows_mut(&mut out, m, n, MIN_ROWS_PER_THREAD, |rows, chunk| {
            for (local, row) in rows.enumerate() {
                let o_row = &mut chunk[local * n..(local + 1) * n];
                accumulate_row(o_row, &ad[row * k..(row + 1) * k], bd, k, n);
            }
        });
        return out;
    }
    // Pack once on the launching thread; workers share it read-only.
    let pb = pack_b(bd, k, n);
    // SAFETY(disjoint: out[rows] — workers receive non-overlapping row chunks of `out`)
    parallel_rows_mut(&mut out, m, n, MIN_ROWS_PER_THREAD, |rows, chunk| {
        gemm_rows_packed(rows, chunk, ad, k, &pb, bd, n);
    });
    out
}

/// `C = A @ Bᵀ` for `a: [M,K]`, `b: [N,K]` → `[M,N]`.
///
/// Used by backward passes (`dX = dY @ Wᵀ`) and the tied LM head without
/// materializing the transpose. Rows of both operands are contiguous, so
/// this is a dot-product kernel; with one output row (per-token decode)
/// the parallelism axis switches to output columns.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_transb: lhs rank-2 required");
    assert_eq!(b.rank(), 2, "matmul_transb: rhs rank-2 required");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul_transb: inner dims differ, {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    if m == 1 {
        // Decode path: one output row of N dots — split the columns.
        struct SendPtr(*mut f32);
        // SAFETY(invariant: workers only offset the base into disjoint column ranges)
        // `SendPtr` wraps the base of `out`, which outlives the
        // `parallel_chunks` scope (see the `from_raw_parts_mut` below),
        // so sending the pointer across threads cannot create aliased
        // &mut access.
        unsafe impl Send for SendPtr {}
        // SAFETY(invariant: shared access only reads the address via `get`)
        // The disjoint-range argument above covers concurrent use.
        unsafe impl Sync for SendPtr {}
        impl SendPtr {
            fn get(&self) -> *mut f32 {
                self.0
            }
        }
        let base = SendPtr(out.as_mut_ptr());
        parallel_chunks(n, MIN_COLS_PER_THREAD, |s, e, _| {
            // SAFETY(disjoint: out[s .. e] — each worker gets a distinct column range)
            // `e <= n == out.len()`, so this reconstructed slice stays
            // inside the live `out` allocation and no two workers'
            // slices overlap; `out` is not touched by the launching
            // thread until `parallel_chunks` joins.
            let o = unsafe { std::slice::from_raw_parts_mut(base.get().add(s), e - s) };
            for (j, nn) in (s..e).enumerate() {
                o[j] = simd::dot(ad, &bd[nn * k..nn * k + k]);
            }
        });
    } else {
        // Batched decode path (the LM head over B sequences). The B-row
        // loop runs OUTERMOST so each weight row streams through cache
        // once for the whole batch instead of once per sequence — for
        // `[8,64]·[384,64]ᵀ` that is 8× less weight traffic. Each output
        // element is still one independent `simd::dot` over `k`, so
        // every row's bits are identical to its `m = 1` result (the
        // batch-invariance contract).
        // SAFETY(disjoint: out[rows] — workers receive non-overlapping row chunks of `out`)
        parallel_rows_mut(&mut out, m, n, MIN_ROWS_PER_THREAD, |rows, chunk| {
            let rows: Vec<usize> = rows.collect();
            for nn in 0..n {
                let b_row = &bd[nn * k..nn * k + k];
                for (local, &mm) in rows.iter().enumerate() {
                    chunk[local * n + nn] = simd::dot(&ad[mm * k..(mm + 1) * k], b_row);
                }
            }
        });
    }
    Tensor::from_parts(Shape(vec![m, n]), out)
}

/// `C = Aᵀ @ B` for `a: [K,M]`, `b: [K,N]` → `[M,N]`.
///
/// Used by backward passes (`dW = Xᵀ @ dY`). A is transposed tile-wise
/// into a scratch `[M,K]` buffer (a O(MK) copy against O(MKN) flops) so
/// the packed GEMM driver can run unchanged.
pub fn matmul_transa(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_transa: lhs rank-2 required");
    assert_eq!(b.rank(), 2, "matmul_transa: rhs rank-2 required");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul_transa: outer dims differ, {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut at = vec![0.0f32; m * k];
    transpose_into(&mut at, a.data(), k, m);
    let out = matmul_raw(&at, b.data(), m, k, n);
    Tensor::from_parts(Shape(vec![m, n]), out)
}

/// Batched matmul: `a: [B,M,K] @ b: [B,K,N]` → `[B,M,N]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_impl(a, b, false, false)
}

/// Batched `a @ bᵀ`: `a: [B,M,K] @ b: [B,N,K]` → `[B,M,N]`.
pub fn bmm_transb(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_impl(a, b, false, true)
}

/// Batched `aᵀ @ b`: `a: [B,K,M] @ b: [B,K,N]` → `[B,M,N]`.
pub fn bmm_transa(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_impl(a, b, true, false)
}

fn bmm_impl(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
    assert_eq!(a.rank(), 3, "bmm: lhs must be rank-3, got {}", a.shape());
    assert_eq!(b.rank(), 3, "bmm: rhs must be rank-3, got {}", b.shape());
    assert_eq!(
        a.dims()[0],
        b.dims()[0],
        "bmm: batch dims differ, {} vs {}",
        a.shape(),
        b.shape()
    );
    let batch = a.dims()[0];
    let (m, ka) = if ta {
        (a.dims()[2], a.dims()[1])
    } else {
        (a.dims()[1], a.dims()[2])
    };
    let (kb, n) = if tb {
        (b.dims()[2], b.dims()[1])
    } else {
        (b.dims()[1], b.dims()[2])
    };
    assert_eq!(
        ka, kb,
        "bmm: inner dims differ, {} vs {} (ta={ta}, tb={tb})",
        a.shape(),
        b.shape()
    );
    let k = ka;
    let (ad, bd) = (a.data(), b.data());
    let a_stride = a.dims()[1] * a.dims()[2];
    let b_stride = b.dims()[1] * b.dims()[2];
    let mut out = vec![0.0f32; batch * m * n];
    // Parallelize across the fused (batch, m) row space; per-batch mats
    // are attention-sized, so the unpacked kernels are the right tool.
    // SAFETY(disjoint: out[rows] — workers tile the fused (batch, m) row space)
    parallel_rows_mut(&mut out, batch * m, n, MIN_ROWS_PER_THREAD, |rows, chunk| {
        for (local, row) in rows.enumerate() {
            let (bi, mm) = (row / m, row % m);
            let a_mat = &ad[bi * a_stride..(bi + 1) * a_stride];
            let b_mat = &bd[bi * b_stride..(bi + 1) * b_stride];
            let o_row = &mut chunk[local * n..(local + 1) * n];
            match (ta, tb) {
                (false, false) => {
                    o_row.fill(0.0);
                    accumulate_row(o_row, &a_mat[mm * k..(mm + 1) * k], b_mat, k, n);
                }
                (false, true) => {
                    let a_row = &a_mat[mm * k..(mm + 1) * k];
                    for (nn, o) in o_row.iter_mut().enumerate() {
                        *o = simd::dot(a_row, &b_mat[nn * k..nn * k + k]);
                    }
                }
                (true, false) => {
                    o_row.fill(0.0);
                    // strided A column: gather into a register per k step
                    for kk in 0..k {
                        let av = a_mat[kk * m + mm];
                        simd::axpy(av, &b_mat[kk * n..kk * n + n], o_row);
                    }
                }
                (true, true) => unreachable!("bmm: double transpose not exposed"),
            }
        }
    });
    Tensor::from_parts(Shape(vec![batch, m, n]), out)
}

/// Tile-wise transpose of a row-major `[rows, cols]` buffer into `out`
/// (`[cols, rows]`). Both tiles stay cache-resident, so large transposes
/// stop thrashing: the naive element loop walks one operand with a
/// `rows`-element stride across the whole matrix.
fn transpose_into(out: &mut [f32], d: &[f32], rows: usize, cols: usize) {
    debug_assert_eq!(out.len(), rows * cols);
    debug_assert_eq!(d.len(), rows * cols);
    for i0 in (0..rows).step_by(TRANSPOSE_TILE) {
        let i_end = (i0 + TRANSPOSE_TILE).min(rows);
        for j0 in (0..cols).step_by(TRANSPOSE_TILE) {
            let j_end = (j0 + TRANSPOSE_TILE).min(cols);
            for i in i0..i_end {
                for j in j0..j_end {
                    out[j * rows + i] = d[i * cols + j];
                }
            }
        }
    }
}

/// Transpose a rank-2 tensor (tile-blocked copy).
pub fn transpose2d(t: &Tensor) -> Tensor {
    assert_eq!(t.rank(), 2, "transpose2d requires rank-2");
    let (m, n) = (t.dims()[0], t.dims()[1]);
    let mut out = vec![0.0f32; m * n];
    transpose_into(&mut out, t.data(), m, n);
    Tensor::from_parts(Shape(vec![n, m]), out)
}

/// Permute axes of an arbitrary-rank tensor (a full copy).
///
/// `axes` must be a permutation of `0..rank`. The source offset is
/// carried incrementally through the mixed-radix counter (O(1) amortized
/// per element instead of O(rank)), and output-contiguous inner runs are
/// block-copied.
pub fn permute(t: &Tensor, axes: &[usize]) -> Tensor {
    let rank = t.rank();
    assert_eq!(axes.len(), rank, "permute: axes len != rank");
    let mut seen = vec![false; rank];
    for &a in axes {
        assert!(a < rank && !seen[a], "permute: invalid axes {axes:?}");
        seen[a] = true;
    }
    let in_dims = t.dims();
    let out_dims: Vec<usize> = axes.iter().map(|&a| in_dims[a]).collect();
    let in_strides = t.shape().strides();
    // Stride in the *input* for a unit step along each *output* dim.
    let step: Vec<usize> = axes.iter().map(|&a| in_strides[a]).collect();
    let out_shape = Shape(out_dims.clone());
    let numel = t.numel();
    let mut out = vec![0.0f32; numel];
    let d = t.data();
    if numel == 0 {
        return Tensor::from_parts(out_shape, out);
    }
    let inner = rank - 1;
    let inner_len = out_dims[inner];
    let mut idx = vec![0usize; rank];
    let mut src = 0usize;
    if step[inner] == 1 && inner_len > 1 {
        // The output's innermost dim walks the input contiguously:
        // copy whole runs, incrementing the source offset per outer step.
        let mut pos = 0usize;
        while pos < numel {
            out[pos..pos + inner_len].copy_from_slice(&d[src..src + inner_len]);
            pos += inner_len;
            for dim in (0..inner).rev() {
                idx[dim] += 1;
                if idx[dim] < out_dims[dim] {
                    src += step[dim];
                    break;
                }
                idx[dim] = 0;
                src -= (out_dims[dim] - 1) * step[dim];
            }
        }
        return Tensor::from_parts(out_shape, out);
    }
    for o in out.iter_mut() {
        *o = d[src];
        for dim in (0..rank).rev() {
            idx[dim] += 1;
            if idx[dim] < out_dims[dim] {
                src += step[dim];
                break;
            }
            idx[dim] = 0;
            src -= (out_dims[dim] - 1) * step[dim];
        }
    }
    Tensor::from_parts(out_shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c]).unwrap()
    }

    #[test]
    fn matmul_reference() {
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[5.0, 6.0, 7.0, 8.0], 2, 2);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rect() {
        let a = t2(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 3, 2); // 3x2
        let b = t2(&[2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], 2, 4); // 2x4
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[3, 4]);
        assert_eq!(&c.data()[..4], &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&c.data()[4..8], &[6.0, 7.0, 8.0, 9.0]);
        assert_eq!(&c.data()[8..], &[8.0, 10.0, 12.0, 14.0]);
    }

    /// The packed/blocked path must agree with a naive triple loop on
    /// shapes that exercise every edge: m % MR, n % NR, k % KC, k % 4.
    #[test]
    fn packed_kernel_matches_naive_on_edge_shapes() {
        for &(m, k, n) in &[
            (9usize, 7usize, 17usize),
            (8, 4, 16),
            (13, 300, 33),
            (16, 5, 16),
            (33, 16, 40),
            (1, 64, 100),
            (3, 31, 7),
        ] {
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 31 + 7) % 23) as f32 * 0.25 - 2.0).collect();
            let b: Vec<f32> = (0..k * n).map(|i| ((i * 17 + 3) % 19) as f32 * 0.5 - 4.0).collect();
            let mut naive = vec![0.0f32; m * n];
            for mm in 0..m {
                for kk in 0..k {
                    for nn in 0..n {
                        naive[mm * n + nn] += a[mm * k + kk] * b[kk * n + nn];
                    }
                }
            }
            let at = Tensor::from_vec(a, &[m, k]).unwrap();
            let bt = Tensor::from_vec(b, &[k, n]).unwrap();
            let c = matmul(&at, &bt);
            let nt = Tensor::from_vec(naive, &[m, n]).unwrap();
            assert!(
                c.allclose(&nt, 1e-3),
                "mismatch at shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = t2(
            &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0],
            4,
            3,
        ); // treated as Bᵀ: 3x4
        let expect = matmul(&a, &transpose2d(&b));
        assert!(matmul_transb(&a, &b).allclose(&expect, 1e-5));
    }

    #[test]
    fn transb_single_row_matches_multi_row_path() {
        // m == 1 (column-parallel decode path) must agree with the same
        // row computed through the m > 1 path.
        let k = 37;
        let n = 300;
        let a1: Vec<f32> = (0..k).map(|i| (i as f32) * 0.1 - 1.5).collect();
        let b: Vec<f32> = (0..n * k).map(|i| ((i * 13) % 29) as f32 * 0.2 - 2.0).collect();
        let mut a2 = a1.clone();
        a2.extend(a1.iter().map(|v| v * 2.0));
        let one = matmul_transb(
            &Tensor::from_vec(a1, &[1, k]).unwrap(),
            &Tensor::from_vec(b.clone(), &[n, k]).unwrap(),
        );
        let two = matmul_transb(
            &Tensor::from_vec(a2, &[2, k]).unwrap(),
            &Tensor::from_vec(b, &[n, k]).unwrap(),
        );
        for j in 0..n {
            assert_eq!(one.data()[j].to_bits(), two.data()[j].to_bits());
        }
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2); // Aᵀ: 2x3
        let b = t2(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], 3, 2);
        let expect = matmul(&transpose2d(&a), &b);
        assert!(matmul_transa(&a, &b).allclose(&expect, 1e-5));
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..24).map(|i| (i as f32) * 0.5).collect(), &[2, 3, 4]).unwrap();
        let c = bmm(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 4]);
        for bi in 0..2 {
            let am = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[2, 3]).unwrap();
            let bm = Tensor::from_vec(b.data()[bi * 12..(bi + 1) * 12].to_vec(), &[3, 4]).unwrap();
            let cm = matmul(&am, &bm);
            assert!(Tensor::from_vec(c.data()[bi * 8..(bi + 1) * 8].to_vec(), &[2, 4])
                .unwrap()
                .allclose(&cm, 1e-5));
        }
    }

    #[test]
    fn bmm_transb_matches() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.1).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..24).map(|i| i as f32 * 0.2).collect(), &[2, 4, 3]).unwrap();
        let c = bmm_transb(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 4]);
        for bi in 0..2 {
            let am = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[2, 3]).unwrap();
            let bm = Tensor::from_vec(b.data()[bi * 12..(bi + 1) * 12].to_vec(), &[4, 3]).unwrap();
            let cm = matmul(&am, &transpose2d(&bm));
            assert!(Tensor::from_vec(c.data()[bi * 8..(bi + 1) * 8].to_vec(), &[2, 4])
                .unwrap()
                .allclose(&cm, 1e-6));
        }
    }

    #[test]
    fn bmm_transa_matches() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.3).collect(), &[2, 3, 2]).unwrap();
        let b = Tensor::from_vec((0..24).map(|i| i as f32 * 0.1).collect(), &[2, 3, 4]).unwrap();
        let c = bmm_transa(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 4]);
        for bi in 0..2 {
            let am = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[3, 2]).unwrap();
            let bm = Tensor::from_vec(b.data()[bi * 12..(bi + 1) * 12].to_vec(), &[3, 4]).unwrap();
            let cm = matmul(&transpose2d(&am), &bm);
            assert!(Tensor::from_vec(c.data()[bi * 8..(bi + 1) * 8].to_vec(), &[2, 4])
                .unwrap()
                .allclose(&cm, 1e-6));
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_bad_inner_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn transpose_blocked_matches_naive() {
        // shapes around the tile edge
        for &(m, n) in &[(1usize, 1usize), (31, 33), (32, 32), (65, 7), (7, 65)] {
            let t = Tensor::from_vec((0..m * n).map(|i| i as f32).collect(), &[m, n]).unwrap();
            let tt = transpose2d(&t);
            assert_eq!(tt.dims(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(tt.at(&[j, i]), t.at(&[i, j]));
                }
            }
        }
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        let p = permute(&t, &[1, 0, 2]);
        assert_eq!(p.dims(), &[3, 2, 4]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[j, i, k]), t.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    fn permute_roundtrip_identity() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        let p = permute(&permute(&t, &[2, 0, 1]), &[1, 2, 0]);
        assert_eq!(p, t);
    }

    #[test]
    fn permute_strided_inner_axis() {
        // output inner dim maps to input dim 0 (stride != 1): exercises
        // the incremental-offset path rather than the run-copy path
        let t = Tensor::from_vec((0..30).map(|i| i as f32).collect(), &[5, 3, 2]).unwrap();
        let p = permute(&t, &[2, 1, 0]);
        assert_eq!(p.dims(), &[2, 3, 5]);
        for i in 0..5 {
            for j in 0..3 {
                for k in 0..2 {
                    assert_eq!(p.at(&[k, j, i]), t.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        use crate::par::set_num_threads;
        let a = Tensor::from_vec((0..64 * 32).map(|i| (i % 13) as f32 * 0.1).collect(), &[64, 32])
            .unwrap();
        let b = Tensor::from_vec((0..32 * 48).map(|i| (i % 7) as f32 * 0.2).collect(), &[32, 48])
            .unwrap();
        set_num_threads(1);
        let serial = matmul(&a, &b);
        set_num_threads(4);
        let par = matmul(&a, &b);
        set_num_threads(0);
        for (x, y) in serial.data().iter().zip(par.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "thread count changed bits");
        }
    }
}

//! Matrix multiplication kernels (2-D and batched 3-D), row-parallel.
//!
//! Loop order is `m, k, n` so the inner loop streams rows of `B` and the
//! output row accumulates in cache — the standard cache-friendly layout for
//! row-major operands without an explicit packing step. Rows of the output
//! are distributed across scoped threads (see [`crate::par`]).

use crate::par::parallel_rows_mut;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Minimum rows per thread before we bother spawning.
const MIN_ROWS_PER_THREAD: usize = 8;

/// Inner kernel: `out[m_range, :] = A[m_range, :] @ B` for row-major
/// `a: [M,K]`, `b: [K,N]`, writing into the chunk for those rows.
fn mm_rows(
    rows: std::ops::Range<usize>,
    out_chunk: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
) {
    out_chunk.fill(0.0);
    for (local, m) in rows.enumerate() {
        let a_row = &a[m * k..(m + 1) * k];
        let o_row = &mut out_chunk[local * n..(local + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
}

/// `C = A @ B` for `a: [M,K]`, `b: [K,N]` → `[M,N]`.
///
/// # Panics
/// Panics unless both inputs are rank-2 with matching inner dimension.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul: lhs must be rank-2, got {}", a.shape());
    assert_eq!(b.rank(), 2, "matmul: rhs must be rank-2, got {}", b.shape());
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul: inner dims differ, {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    parallel_rows_mut(&mut out, m, n, MIN_ROWS_PER_THREAD, |rows, chunk| {
        mm_rows(rows, chunk, ad, bd, k, n);
    });
    Tensor::from_parts(Shape(vec![m, n]), out)
}

/// `C = A @ Bᵀ` for `a: [M,K]`, `b: [N,K]` → `[M,N]`.
///
/// Used by backward passes (`dX = dY @ Wᵀ`) without materializing the
/// transpose. The dot-product inner loop is auto-vectorization friendly.
pub fn matmul_transb(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_transb: lhs rank-2 required");
    assert_eq!(b.rank(), 2, "matmul_transb: rhs rank-2 required");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul_transb: inner dims differ, {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    parallel_rows_mut(&mut out, m, n, MIN_ROWS_PER_THREAD, |rows, chunk| {
        for (local, mm) in rows.enumerate() {
            let a_row = &ad[mm * k..(mm + 1) * k];
            for nn in 0..n {
                let b_row = &bd[nn * k..(nn + 1) * k];
                let dot: f32 = a_row.iter().zip(b_row.iter()).map(|(&x, &y)| x * y).sum();
                chunk[local * n + nn] = dot;
            }
        }
    });
    Tensor::from_parts(Shape(vec![m, n]), out)
}

/// `C = Aᵀ @ B` for `a: [K,M]`, `b: [K,N]` → `[M,N]`.
///
/// Used by backward passes (`dW = Xᵀ @ dY`).
pub fn matmul_transa(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_transa: lhs rank-2 required");
    assert_eq!(b.rank(), 2, "matmul_transa: rhs rank-2 required");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul_transa: outer dims differ, {} vs {}",
        a.shape(),
        b.shape()
    );
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    // Parallelize over output rows m; each output row m is sum_k A[k,m]*B[k,:].
    parallel_rows_mut(&mut out, m, n, MIN_ROWS_PER_THREAD, |rows, chunk| {
        chunk.fill(0.0);
        for (local, mm) in rows.enumerate() {
            let o_row = &mut chunk[local * n..(local + 1) * n];
            for kk in 0..k {
                let av = ad[kk * m + mm];
                if av == 0.0 {
                    continue;
                }
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    });
    Tensor::from_parts(Shape(vec![m, n]), out)
}

/// Batched matmul: `a: [B,M,K] @ b: [B,K,N]` → `[B,M,N]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_impl(a, b, false, false)
}

/// Batched `a @ bᵀ`: `a: [B,M,K] @ b: [B,N,K]` → `[B,M,N]`.
pub fn bmm_transb(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_impl(a, b, false, true)
}

/// Batched `aᵀ @ b`: `a: [B,K,M] @ b: [B,K,N]` → `[B,M,N]`.
pub fn bmm_transa(a: &Tensor, b: &Tensor) -> Tensor {
    bmm_impl(a, b, true, false)
}

fn bmm_impl(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
    assert_eq!(a.rank(), 3, "bmm: lhs must be rank-3, got {}", a.shape());
    assert_eq!(b.rank(), 3, "bmm: rhs must be rank-3, got {}", b.shape());
    assert_eq!(
        a.dims()[0],
        b.dims()[0],
        "bmm: batch dims differ, {} vs {}",
        a.shape(),
        b.shape()
    );
    let batch = a.dims()[0];
    let (m, ka) = if ta {
        (a.dims()[2], a.dims()[1])
    } else {
        (a.dims()[1], a.dims()[2])
    };
    let (kb, n) = if tb {
        (b.dims()[2], b.dims()[1])
    } else {
        (b.dims()[1], b.dims()[2])
    };
    assert_eq!(
        ka, kb,
        "bmm: inner dims differ, {} vs {} (ta={ta}, tb={tb})",
        a.shape(),
        b.shape()
    );
    let k = ka;
    let (ad, bd) = (a.data(), b.data());
    let a_stride = a.dims()[1] * a.dims()[2];
    let b_stride = b.dims()[1] * b.dims()[2];
    let mut out = vec![0.0f32; batch * m * n];
    // Parallelize across the fused (batch, m) row space.
    parallel_rows_mut(&mut out, batch * m, n, MIN_ROWS_PER_THREAD, |rows, chunk| {
        for (local, row) in rows.enumerate() {
            let (bi, mm) = (row / m, row % m);
            let a_mat = &ad[bi * a_stride..(bi + 1) * a_stride];
            let b_mat = &bd[bi * b_stride..(bi + 1) * b_stride];
            let o_row = &mut chunk[local * n..(local + 1) * n];
            o_row.fill(0.0);
            match (ta, tb) {
                (false, false) => {
                    for kk in 0..k {
                        let av = a_mat[mm * k + kk];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b_mat[kk * n..(kk + 1) * n];
                        for (o, &bv) in o_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
                (false, true) => {
                    let a_row = &a_mat[mm * k..(mm + 1) * k];
                    for (nn, o) in o_row.iter_mut().enumerate() {
                        let b_row = &b_mat[nn * k..(nn + 1) * k];
                        *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
                    }
                }
                (true, false) => {
                    for kk in 0..k {
                        let av = a_mat[kk * m + mm];
                        if av == 0.0 {
                            continue;
                        }
                        let b_row = &b_mat[kk * n..(kk + 1) * n];
                        for (o, &bv) in o_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
                (true, true) => unreachable!("bmm: double transpose not exposed"),
            }
        }
    });
    Tensor::from_parts(Shape(vec![batch, m, n]), out)
}

/// Transpose a rank-2 tensor.
pub fn transpose2d(t: &Tensor) -> Tensor {
    assert_eq!(t.rank(), 2, "transpose2d requires rank-2");
    let (m, n) = (t.dims()[0], t.dims()[1]);
    let d = t.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = d[i * n + j];
        }
    }
    Tensor::from_parts(Shape(vec![n, m]), out)
}

/// Permute axes of an arbitrary-rank tensor (a full copy).
///
/// `axes` must be a permutation of `0..rank`.
pub fn permute(t: &Tensor, axes: &[usize]) -> Tensor {
    let rank = t.rank();
    assert_eq!(axes.len(), rank, "permute: axes len != rank");
    let mut seen = vec![false; rank];
    for &a in axes {
        assert!(a < rank && !seen[a], "permute: invalid axes {axes:?}");
        seen[a] = true;
    }
    let in_dims = t.dims();
    let out_dims: Vec<usize> = axes.iter().map(|&a| in_dims[a]).collect();
    let in_strides = t.shape().strides();
    let out_shape = Shape(out_dims.clone());
    let mut out = vec![0.0f32; t.numel()];
    let d = t.data();
    // Walk the output in order; compute the source offset incrementally.
    let mut idx = vec![0usize; rank];
    for o in out.iter_mut() {
        let mut src = 0usize;
        for (dim, &i) in idx.iter().enumerate() {
            src += i * in_strides[axes[dim]];
        }
        *o = d[src];
        // increment mixed-radix counter over out_dims
        for dim in (0..rank).rev() {
            idx[dim] += 1;
            if idx[dim] < out_dims[dim] {
                break;
            }
            idx[dim] = 0;
        }
    }
    Tensor::from_parts(out_shape, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: &[f32], r: usize, c: usize) -> Tensor {
        Tensor::from_vec(data.to_vec(), &[r, c]).unwrap()
    }

    #[test]
    fn matmul_reference() {
        // [[1,2],[3,4]] @ [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t2(&[1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = t2(&[5.0, 6.0, 7.0, 8.0], 2, 2);
        assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rect() {
        let a = t2(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], 3, 2); // 3x2
        let b = t2(&[2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], 2, 4); // 2x4
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[3, 4]);
        assert_eq!(&c.data()[..4], &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(&c.data()[4..8], &[6.0, 7.0, 8.0, 9.0]);
        assert_eq!(&c.data()[8..], &[8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        let b = t2(
            &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0, 18.0],
            4,
            3,
        ); // treated as Bᵀ: 3x4
        let expect = matmul(&a, &transpose2d(&b));
        assert_eq!(matmul_transb(&a, &b), expect);
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        let a = t2(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2); // Aᵀ: 2x3
        let b = t2(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], 3, 2);
        let expect = matmul(&transpose2d(&a), &b);
        assert_eq!(matmul_transa(&a, &b), expect);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..24).map(|i| (i as f32) * 0.5).collect(), &[2, 3, 4]).unwrap();
        let c = bmm(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 4]);
        for bi in 0..2 {
            let am = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[2, 3]).unwrap();
            let bm = Tensor::from_vec(b.data()[bi * 12..(bi + 1) * 12].to_vec(), &[3, 4]).unwrap();
            let cm = matmul(&am, &bm);
            assert_eq!(&c.data()[bi * 8..(bi + 1) * 8], cm.data());
        }
    }

    #[test]
    fn bmm_transb_matches() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.1).collect(), &[2, 2, 3]).unwrap();
        let b = Tensor::from_vec((0..24).map(|i| i as f32 * 0.2).collect(), &[2, 4, 3]).unwrap();
        let c = bmm_transb(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 4]);
        for bi in 0..2 {
            let am = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[2, 3]).unwrap();
            let bm = Tensor::from_vec(b.data()[bi * 12..(bi + 1) * 12].to_vec(), &[4, 3]).unwrap();
            let cm = matmul(&am, &transpose2d(&bm));
            assert!(Tensor::from_vec(c.data()[bi * 8..(bi + 1) * 8].to_vec(), &[2, 4])
                .unwrap()
                .allclose(&cm, 1e-6));
        }
    }

    #[test]
    fn bmm_transa_matches() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.3).collect(), &[2, 3, 2]).unwrap();
        let b = Tensor::from_vec((0..24).map(|i| i as f32 * 0.1).collect(), &[2, 3, 4]).unwrap();
        let c = bmm_transa(&a, &b);
        assert_eq!(c.dims(), &[2, 2, 4]);
        for bi in 0..2 {
            let am = Tensor::from_vec(a.data()[bi * 6..(bi + 1) * 6].to_vec(), &[3, 2]).unwrap();
            let bm = Tensor::from_vec(b.data()[bi * 12..(bi + 1) * 12].to_vec(), &[3, 4]).unwrap();
            let cm = matmul(&transpose2d(&am), &bm);
            assert!(Tensor::from_vec(c.data()[bi * 8..(bi + 1) * 8].to_vec(), &[2, 4])
                .unwrap()
                .allclose(&cm, 1e-6));
        }
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_bad_inner_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn permute_3d() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        let p = permute(&t, &[1, 0, 2]);
        assert_eq!(p.dims(), &[3, 2, 4]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(p.at(&[j, i, k]), t.at(&[i, j, k]));
                }
            }
        }
    }

    #[test]
    fn permute_roundtrip_identity() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        let p = permute(&permute(&t, &[2, 0, 1]), &[1, 2, 0]);
        assert_eq!(p, t);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        use crate::par::set_num_threads;
        let a = Tensor::from_vec((0..64 * 32).map(|i| (i % 13) as f32 * 0.1).collect(), &[64, 32])
            .unwrap();
        let b = Tensor::from_vec((0..32 * 48).map(|i| (i % 7) as f32 * 0.2).collect(), &[32, 48])
            .unwrap();
        set_num_threads(1);
        let serial = matmul(&a, &b);
        set_num_threads(4);
        let par = matmul(&a, &b);
        set_num_threads(0);
        assert!(serial.allclose(&par, 1e-6));
    }
}

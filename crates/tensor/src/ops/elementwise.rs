//! Elementwise unary and binary kernels.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Apply `f` to every element.
pub fn map(t: &Tensor, f: impl Fn(f32) -> f32) -> Tensor {
    let data = t.data().iter().map(|&v| f(v)).collect();
    Tensor::from_parts(t.shape().clone(), data)
}

/// Elementwise binary op on same-shape tensors.
///
/// # Panics
/// Panics if shapes differ.
pub fn zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert_eq!(
        a.shape(),
        b.shape(),
        "zip: shape mismatch {} vs {}",
        a.shape(),
        b.shape()
    );
    let data = a
        .data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| f(x, y))
        .collect();
    Tensor::from_parts(a.shape().clone(), data)
}

/// `a + b` (same shape).
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    zip(a, b, |x, y| x + y)
}

/// `a - b` (same shape).
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    zip(a, b, |x, y| x - y)
}

/// `a * b` elementwise (same shape).
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    zip(a, b, |x, y| x * y)
}

/// `a / b` elementwise (same shape).
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    zip(a, b, |x, y| x / y)
}

/// `a + b` where `b`'s shape is a trailing suffix of `a`'s
/// (e.g. `[B,T,D] + [D]`, `[N,D] + [D]`).
///
/// # Panics
/// Panics if `b` is not a trailing broadcast of `a`.
pub fn add_broadcast(a: &Tensor, b: &Tensor) -> Tensor {
    broadcast_zip(a, b, |x, y| x + y)
}

/// `a * b` with trailing broadcast (see [`add_broadcast`]).
pub fn mul_broadcast(a: &Tensor, b: &Tensor) -> Tensor {
    broadcast_zip(a, b, |x, y| x * y)
}

/// Generic trailing-broadcast binary op.
pub fn broadcast_zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    assert!(
        a.shape().is_trailing_broadcast_of(b.shape()),
        "broadcast_zip: {} cannot broadcast over {}",
        b.shape(),
        a.shape()
    );
    let bn = b.numel().max(1);
    let bd = b.data();
    // Chunked sweep instead of `bd[i % bn]`: one bounds check per chunk
    // and no per-element modulo, with the exact same pairing (and thus
    // bit-identical results) as the index arithmetic it replaces.
    let mut data = Vec::with_capacity(a.numel());
    for chunk in a.data().chunks(bn) {
        data.extend(chunk.iter().zip(bd).map(|(&x, &y)| f(x, y)));
    }
    Tensor::from_parts(a.shape().clone(), data)
}

/// Multiply by a scalar.
pub fn scale(t: &Tensor, s: f32) -> Tensor {
    map(t, |v| v * s)
}

/// Add a scalar.
pub fn add_scalar(t: &Tensor, s: f32) -> Tensor {
    map(t, |v| v + s)
}

/// Negation.
pub fn neg(t: &Tensor) -> Tensor {
    map(t, |v| -v)
}

/// Natural exponential.
pub fn exp(t: &Tensor) -> Tensor {
    map(t, f32::exp)
}

/// Natural log.
pub fn ln(t: &Tensor) -> Tensor {
    map(t, f32::ln)
}

/// Hyperbolic tangent.
pub fn tanh(t: &Tensor) -> Tensor {
    map(t, f32::tanh)
}

/// Logistic sigmoid `1 / (1 + e^-x)`.
pub fn sigmoid(t: &Tensor) -> Tensor {
    map(t, |v| 1.0 / (1.0 + (-v).exp()))
}

/// Rectified linear unit.
pub fn relu(t: &Tensor) -> Tensor {
    map(t, |v| v.max(0.0))
}

/// GELU with the tanh approximation used by GPT-2.
pub fn gelu(t: &Tensor) -> Tensor {
    map(t, gelu_scalar)
}

/// GPT-2's tanh-approximate GELU on a single value.
#[inline]
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// GELU via a rational `tanh` approximation — the quantized-inference
/// variant of [`gelu`].
///
/// `libm`'s `tanhf` costs ~15 ns per element and dominates the MLP once
/// the matmuls are int8; [`tanh_fast`] is a 13-multiply polynomial ratio
/// accurate to a few ULP, which is far below int8 quantization error.
/// Only the quantized decode path uses this — f32 training and decode
/// keep the exact [`gelu`] so their numerics are untouched.
pub fn gelu_fast(t: &Tensor) -> Tensor {
    map(t, gelu_fast_scalar)
}

/// [`gelu_scalar`] with [`tanh_fast`] substituted for `f32::tanh`.
#[inline]
pub fn gelu_fast_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + tanh_fast(C * (x + 0.044_715 * x * x * x)))
}

/// Fast `tanh` as the ratio of two odd/even polynomials (the classic
/// single-precision Padé fit), exact to within a few ULP on all of `f32`.
/// Deterministic: pure multiplies/divide, no table lookups.
#[inline]
pub fn tanh_fast(x: f32) -> f32 {
    // Saturate first: beyond |x| = 7.90531 the f32 tanh is ±1 exactly,
    // and the polynomial is only a valid fit inside that interval.
    let x = x.clamp(-7.905_31, 7.905_31);
    let x2 = x * x;
    let p = 4.893_524_6e-3
        + x2 * (6.372_619_3e-4
            + x2 * (1.485_722_4e-5
                + x2 * (5.122_297e-8
                    + x2 * (-8.604_672e-11 + x2 * (2.000_188e-13 + x2 * -2.760_768_5e-16)))));
    let q = 4.893_525_3e-3 + x2 * (2.268_434_6e-3 + x2 * (1.185_347e-4 + x2 * 1.198_258_4e-6));
    x * p / q
}

/// Derivative of [`gelu_scalar`] with respect to its input.
#[inline]
pub fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044_715 * x * x * x;
    let u = C * (x + x3);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044_715 * x * x)
}

/// Square root.
pub fn sqrt(t: &Tensor) -> Tensor {
    map(t, f32::sqrt)
}

/// Elementwise square.
pub fn square(t: &Tensor) -> Tensor {
    map(t, |v| v * v)
}

/// Build a shape-checked tensor of the same shape as `like` from raw data.
pub fn like(like: &Tensor, data: Vec<f32>) -> Tensor {
    assert_eq!(like.numel(), data.len());
    Tensor::from_parts(Shape(like.dims().to_vec()), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[v.len()]).unwrap()
    }

    #[test]
    fn binary_ops() {
        let a = t(&[1.0, 2.0, 3.0]);
        let b = t(&[4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(div(&b, &a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn binary_shape_mismatch_panics() {
        add(&t(&[1.0]), &t(&[1.0, 2.0]));
    }

    #[test]
    fn broadcast_add_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = t(&[10.0, 20.0, 30.0]);
        let c = add_broadcast(&a, &b);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn broadcast_wrong_suffix_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2]);
        add_broadcast(&a, &b);
    }

    #[test]
    fn activations_reference_values() {
        let x = t(&[0.0]);
        assert_eq!(sigmoid(&x).data()[0], 0.5);
        assert_eq!(tanh(&x).data()[0], 0.0);
        assert_eq!(relu(&t(&[-1.0])).data()[0], 0.0);
        assert_eq!(relu(&t(&[2.0])).data()[0], 2.0);
        // GELU(0) = 0, GELU(x) ≈ x for large x, ≈ 0 for very negative x.
        assert_eq!(gelu(&x).data()[0], 0.0);
        assert!((gelu(&t(&[10.0])).data()[0] - 10.0).abs() < 1e-4);
        assert!(gelu(&t(&[-10.0])).data()[0].abs() < 1e-4);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-3.0f32, -1.0, -0.1, 0.0, 0.5, 2.0, 4.0] {
            let h = 1e-3;
            let fd = (gelu_scalar(x + h) - gelu_scalar(x - h)) / (2.0 * h);
            let an = gelu_grad_scalar(x);
            assert!(
                (fd - an).abs() < 1e-2,
                "gelu'({x}) fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0]);
        assert_eq!(scale(&a, 2.0).data(), &[2.0, -4.0]);
        assert_eq!(add_scalar(&a, 1.0).data(), &[2.0, -1.0]);
        assert_eq!(neg(&a).data(), &[-1.0, 2.0]);
        assert_eq!(square(&a).data(), &[1.0, 4.0]);
    }

    #[test]
    fn tanh_fast_tracks_libm_to_a_few_ulp() {
        for i in -4000..=4000 {
            let x = i as f32 * 2.5e-3; // dense grid over [-10, 10]
            let exact = x.tanh();
            let fast = tanh_fast(x);
            assert!(
                (exact - fast).abs() <= 2e-7 + exact.abs() * 4.0 * f32::EPSILON,
                "tanh_fast({x}) = {fast}, libm = {exact}"
            );
        }
        // saturation: within a few ULP of ±1 well past the clamp point,
        // and odd symmetry / exact zero at the origin
        assert!((tanh_fast(50.0) - 1.0).abs() <= 2e-7);
        assert_eq!(tanh_fast(50.0), -tanh_fast(-50.0));
        assert_eq!(tanh_fast(0.0), 0.0);
    }

    #[test]
    fn gelu_fast_tracks_exact_gelu() {
        for i in -800..=800 {
            let x = i as f32 * 1e-2;
            let d = (gelu_scalar(x) - gelu_fast_scalar(x)).abs();
            assert!(d <= 1e-6 + x.abs() * 1e-6, "gelu mismatch at {x}: {d}");
        }
    }
}

//! Pure functional operations on [`crate::Tensor`] values.
//!
//! These are the forward kernels; the autograd layer in
//! [`crate::var_ops`] composes them with hand-written backward passes.
//! All kernels are shape-checked (panicking with descriptive messages on
//! programmer error) and, where the arithmetic intensity justifies it,
//! parallelized via [`crate::par`].

pub mod elementwise;
pub mod matmul;
pub mod nn;
pub mod quant;
pub mod reduce;
pub mod simd;

pub use elementwise::*;
pub use matmul::*;
pub use nn::*;
pub use quant::{dequantize, qmatmul_transb, quantize_per_row, to_f16, to_f32, QuantizedMatrix};
pub use reduce::*;
pub use simd::{axpy, axpy_f16, dot, dot_f16};

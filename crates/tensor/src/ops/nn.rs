//! Neural-network-specific forward kernels: softmax family, layer norm,
//! embedding lookup, cross-entropy, slicing.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Numerically stable softmax over the last axis.
pub fn softmax_last(t: &Tensor) -> Tensor {
    assert!(t.rank() >= 1, "softmax_last requires rank >= 1");
    let d = *t.dims().last().unwrap();
    assert!(d > 0, "softmax_last: empty last axis");
    let rows = t.numel() / d;
    let mut out = vec![0.0f32; t.numel()];
    for r in 0..rows {
        let row = &t.data()[r * d..(r + 1) * d];
        let o = &mut out[r * d..(r + 1) * d];
        softmax_row(row, o);
    }
    Tensor::from_parts(t.shape().clone(), out)
}

/// Softmax of a single row into `out`.
#[inline]
pub fn softmax_row(row: &[f32], out: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &v) in out.iter_mut().zip(row) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

/// Numerically stable log-softmax over the last axis.
pub fn log_softmax_last(t: &Tensor) -> Tensor {
    assert!(t.rank() >= 1, "log_softmax_last requires rank >= 1");
    let d = *t.dims().last().unwrap();
    assert!(d > 0, "log_softmax_last: empty last axis");
    let rows = t.numel() / d;
    let mut out = vec![0.0f32; t.numel()];
    for r in 0..rows {
        let row = &t.data()[r * d..(r + 1) * d];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
        for (o, &v) in out[r * d..(r + 1) * d].iter_mut().zip(row) {
            *o = v - lse;
        }
    }
    Tensor::from_parts(t.shape().clone(), out)
}

/// Softmax over the last axis of square `[.., T, T]` score matrices with a
/// causal mask: position `(i, j)` with `j > i` receives zero probability.
///
/// This is the attention-weights kernel for autoregressive transformers.
pub fn causal_masked_softmax(t: &Tensor) -> Tensor {
    assert!(t.rank() >= 2, "causal_masked_softmax requires rank >= 2");
    let tt = *t.dims().last().unwrap();
    assert_eq!(
        t.dims()[t.rank() - 2],
        tt,
        "causal_masked_softmax: trailing matrix must be square, got {}",
        t.shape()
    );
    let mats = t.numel() / (tt * tt);
    let mut out = vec![0.0f32; t.numel()];
    for m in 0..mats {
        for i in 0..tt {
            let base = m * tt * tt + i * tt;
            let row = &t.data()[base..base + i + 1]; // only j <= i
            let o = &mut out[base..base + i + 1];
            softmax_row(row, o);
            // out[base + i+1 ..] stays 0 (future positions masked)
        }
    }
    Tensor::from_parts(t.shape().clone(), out)
}

/// Layer normalization over the last axis with affine parameters, returning
/// `(out, mean, rstd)`; the saved statistics feed the backward pass.
///
/// `gamma`/`beta` must be rank-1 of the last-axis length.
pub fn layer_norm(t: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> (Tensor, Tensor, Tensor) {
    let d = *t.dims().last().expect("layer_norm requires rank >= 1");
    assert_eq!(gamma.dims(), &[d], "layer_norm: gamma must be [{d}]");
    assert_eq!(beta.dims(), &[d], "layer_norm: beta must be [{d}]");
    let rows = t.numel() / d;
    let mut out = vec![0.0f32; t.numel()];
    let mut means = vec![0.0f32; rows];
    let mut rstds = vec![0.0f32; rows];
    let (g, b) = (gamma.data(), beta.data());
    for r in 0..rows {
        let row = &t.data()[r * d..(r + 1) * d];
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let rstd = 1.0 / (var + eps).sqrt();
        means[r] = mean;
        rstds[r] = rstd;
        for (j, (o, &v)) in out[r * d..(r + 1) * d].iter_mut().zip(row).enumerate() {
            *o = (v - mean) * rstd * g[j] + b[j];
        }
    }
    let lead: Vec<usize> = t.dims()[..t.rank() - 1].to_vec();
    (
        Tensor::from_parts(t.shape().clone(), out),
        Tensor::from_parts(Shape(lead.clone()), means),
        Tensor::from_parts(Shape(lead), rstds),
    )
}

/// Embedding lookup: gather rows of `table: [V, D]` at `ids` → `[N, D]`.
///
/// # Panics
/// Panics if any id is out of vocabulary.
pub fn embedding(table: &Tensor, ids: &[usize]) -> Tensor {
    assert_eq!(table.rank(), 2, "embedding table must be rank-2");
    let (v, d) = (table.dims()[0], table.dims()[1]);
    let mut out = Vec::with_capacity(ids.len() * d);
    for &id in ids {
        assert!(id < v, "embedding: id {id} out of vocabulary (V={v})");
        out.extend_from_slice(&table.data()[id * d..(id + 1) * d]);
    }
    Tensor::from_parts(Shape(vec![ids.len(), d]), out)
}

/// Mean cross-entropy of `logits: [N, V]` against integer `targets` (len N),
/// with targets equal to `ignore_index` skipped (used for padding).
///
/// Returns `(loss, probs)` where `probs: [N, V]` is the softmax of the
/// logits (reused by the backward pass: `dlogits = (probs - onehot)/N_kept`).
pub fn cross_entropy(logits: &Tensor, targets: &[usize], ignore_index: usize) -> (f32, Tensor) {
    assert_eq!(logits.rank(), 2, "cross_entropy: logits must be [N, V]");
    let (n, v) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(targets.len(), n, "cross_entropy: {n} logit rows vs {} targets", targets.len());
    let mut probs = vec![0.0f32; n * v];
    let mut loss = 0.0f64;
    let mut kept = 0usize;
    for r in 0..n {
        let row = &logits.data()[r * v..(r + 1) * v];
        let p = &mut probs[r * v..(r + 1) * v];
        softmax_row(row, p);
        let t = targets[r];
        if t == ignore_index {
            continue;
        }
        assert!(t < v, "cross_entropy: target {t} out of vocab {v}");
        loss += -(p[t].max(1e-12) as f64).ln();
        kept += 1;
    }
    let loss = if kept == 0 { 0.0 } else { (loss / kept as f64) as f32 };
    (loss, Tensor::from_parts(Shape(vec![n, v]), probs))
}

/// Slice `len` elements starting at `start` along `axis` (copying).
pub fn narrow(t: &Tensor, axis: usize, start: usize, len: usize) -> Tensor {
    assert!(axis < t.rank(), "narrow: axis {axis} out of rank {}", t.rank());
    let dims = t.dims();
    assert!(
        start + len <= dims[axis],
        "narrow: [{start}, {}) out of dim {} (size {})",
        start + len,
        axis,
        dims[axis]
    );
    let outer: usize = dims[..axis].iter().product();
    let inner: usize = dims[axis + 1..].iter().product();
    let mut out_dims = dims.to_vec();
    out_dims[axis] = len;
    let mut out = Vec::with_capacity(outer * len * inner);
    let src = t.data();
    for o in 0..outer {
        let base = o * dims[axis] * inner + start * inner;
        out.extend_from_slice(&src[base..base + len * inner]);
    }
    Tensor::from_parts(Shape(out_dims), out)
}

/// Inverse of [`narrow`] for gradients: place `grad` into a zero tensor of
/// shape `full_dims` at `start` along `axis`.
pub fn pad_narrow_grad(grad: &Tensor, full_dims: &[usize], axis: usize, start: usize) -> Tensor {
    let len = grad.dims()[axis];
    let outer: usize = full_dims[..axis].iter().product();
    let inner: usize = full_dims[axis + 1..].iter().product();
    let mut out = vec![0.0f32; full_dims.iter().product()];
    let g = grad.data();
    for o in 0..outer {
        let dst_base = o * full_dims[axis] * inner + start * inner;
        let src_base = o * len * inner;
        out[dst_base..dst_base + len * inner]
            .copy_from_slice(&g[src_base..src_base + len * inner]);
    }
    Tensor::from_parts(Shape(full_dims.to_vec()), out)
}

/// Concatenate tensors along `axis`. All other dims must match.
pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
    assert!(!parts.is_empty(), "concat: no tensors");
    let rank = parts[0].rank();
    assert!(axis < rank, "concat: axis out of rank");
    let mut out_dims = parts[0].dims().to_vec();
    let mut axis_total = 0usize;
    for p in parts {
        assert_eq!(p.rank(), rank, "concat: rank mismatch");
        for (d, (&a, &b)) in p.dims().iter().zip(parts[0].dims()).enumerate() {
            if d != axis {
                assert_eq!(a, b, "concat: dim {d} mismatch");
            }
        }
        axis_total += p.dims()[axis];
    }
    out_dims[axis] = axis_total;
    let outer: usize = out_dims[..axis].iter().product();
    let inner: usize = out_dims[axis + 1..].iter().product();
    let mut out = Vec::with_capacity(out_dims.iter().product());
    for o in 0..outer {
        for p in parts {
            let pa = p.dims()[axis];
            let base = o * pa * inner;
            out.extend_from_slice(&p.data()[base..base + pa * inner]);
        }
    }
    Tensor::from_parts(Shape(out_dims), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = softmax_last(&t);
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // larger logit -> larger prob
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_stable() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[3]).unwrap();
        let s = softmax_last(&a);
        assert!(!s.has_non_finite());
        let b = softmax_last(&Tensor::from_vec(vec![0.0, 1.0, 2.0], &[3]).unwrap());
        assert!(s.allclose(&b, 1e-5));
    }

    #[test]
    fn log_softmax_matches_ln_softmax() {
        let t = Tensor::from_vec(vec![0.5, -0.5, 2.0, 1.0], &[2, 2]).unwrap();
        let ls = log_softmax_last(&t);
        let s = softmax_last(&t);
        for i in 0..4 {
            assert!((ls.data()[i] - s.data()[i].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_mask_zeroes_future() {
        let t = Tensor::ones(&[1, 3, 3]);
        let s = causal_masked_softmax(&t);
        // row 0: only position 0 allowed
        assert_eq!(s.at(&[0, 0, 0]), 1.0);
        assert_eq!(s.at(&[0, 0, 1]), 0.0);
        assert_eq!(s.at(&[0, 0, 2]), 0.0);
        // row 1: uniform over first two
        assert!((s.at(&[0, 1, 0]) - 0.5).abs() < 1e-6);
        assert!((s.at(&[0, 1, 1]) - 0.5).abs() < 1e-6);
        assert_eq!(s.at(&[0, 1, 2]), 0.0);
        // row 2: uniform over all three
        assert!((s.at(&[0, 2, 2]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_normalizes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let g = Tensor::ones(&[4]);
        let b = Tensor::zeros(&[4]);
        let (o, mean, rstd) = layer_norm(&t, &g, &b, 1e-5);
        assert!((mean.item() - 2.5).abs() < 1e-6);
        let m: f32 = o.data().iter().sum::<f32>() / 4.0;
        let v: f32 = o.data().iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-5);
        assert!((v - 1.0).abs() < 1e-3);
        assert!(rstd.item() > 0.0);
    }

    #[test]
    fn layer_norm_affine() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let (o, _, _) = layer_norm(&t, &g, &b, 1e-5);
        // normalized is approximately [-1, 1] => affine: [-1, 3]
        assert!((o.data()[0] + 1.0).abs() < 1e-2);
        assert!((o.data()[1] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn embedding_gathers_rows() {
        let table = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[3, 2]).unwrap();
        let e = embedding(&table, &[2, 0, 2]);
        assert_eq!(e.dims(), &[3, 2]);
        assert_eq!(e.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn embedding_oov_panics() {
        let table = Tensor::zeros(&[3, 2]);
        embedding(&table, &[3]);
    }

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        // logits hugely favoring the target
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0, 0.0, 100.0, 0.0], &[2, 3]).unwrap();
        let (loss, probs) = cross_entropy(&logits, &[0, 1], usize::MAX);
        assert!(loss < 1e-4, "loss {loss}");
        assert!((probs.at(&[0, 0]) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_v() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, _) = cross_entropy(&logits, &[2], usize::MAX);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_ignores_padding() {
        let logits = Tensor::zeros(&[2, 4]);
        let pad = 999;
        let (loss, _) = cross_entropy(&logits, &[1, pad], pad);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // all ignored -> zero loss, no NaN
        let (loss2, _) = cross_entropy(&logits, &[pad, pad], pad);
        assert_eq!(loss2, 0.0);
    }

    #[test]
    fn narrow_and_pad_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        let n = narrow(&t, 2, 1, 2);
        assert_eq!(n.dims(), &[2, 3, 2]);
        assert_eq!(n.at(&[0, 0, 0]), 1.0);
        assert_eq!(n.at(&[1, 2, 1]), 22.0);
        let padded = pad_narrow_grad(&n, &[2, 3, 4], 2, 1);
        assert_eq!(padded.at(&[0, 0, 0]), 0.0);
        assert_eq!(padded.at(&[0, 0, 1]), 1.0);
        assert_eq!(padded.at(&[1, 2, 3]), 0.0);
    }

    #[test]
    fn narrow_axis0() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[3, 2]).unwrap();
        let n = narrow(&t, 0, 1, 2);
        assert_eq!(n.dims(), &[2, 2]);
        assert_eq!(n.data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 5.0, 6.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 7.0], &[2, 1]).unwrap();
        let c = concat(&[&a, &b], 1);
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn concat_then_narrow_recovers_parts() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        let c = concat(&[&a, &b], 0);
        assert_eq!(narrow(&c, 0, 0, 1), a);
        assert_eq!(narrow(&c, 0, 1, 1), b);
    }
}

//! Reduction kernels — plus the blessed scalar accumulation helpers.
//!
//! Everything that reduces floats in a result-affecting crate must either
//! live in this directory or route through the re-exported
//! `ratatouille_util::accum` helpers below (`xlint`: `float-reduction-order`).

use crate::shape::Shape;
use crate::tensor::Tensor;

pub use ratatouille_util::accum::{max_abs_f32, max_f32, mean_f32, sum_f32};

/// Sum of all elements, as a rank-0 tensor.
pub fn sum_all(t: &Tensor) -> Tensor {
    Tensor::scalar(t.data().iter().sum())
}

/// Mean of all elements, as a rank-0 tensor. Returns 0 for empty tensors.
pub fn mean_all(t: &Tensor) -> Tensor {
    let n = t.numel();
    if n == 0 {
        return Tensor::scalar(0.0);
    }
    Tensor::scalar(t.data().iter().sum::<f32>() / n as f32)
}

/// Reduce `t` down to a trailing-suffix shape by summing over the leading
/// dimensions. Inverse of trailing broadcast — used to compute gradients of
/// broadcast ops (e.g. a bias of shape `[D]` added into `[B,T,D]`).
///
/// # Panics
/// Panics if `target` is not a trailing suffix of `t`'s shape.
pub fn sum_to_trailing(t: &Tensor, target: &[usize]) -> Tensor {
    let tgt = Shape(target.to_vec());
    assert!(
        t.shape().is_trailing_broadcast_of(&tgt),
        "sum_to_trailing: {} is not a trailing suffix of {}",
        tgt,
        t.shape()
    );
    let tail = tgt.numel().max(1);
    let mut out = vec![0.0f32; tail];
    for (i, &v) in t.data().iter().enumerate() {
        out[i % tail] += v;
    }
    Tensor::from_parts(tgt, out)
}

/// Sum over the last axis: `[.., D]` → `[..]`.
pub fn sum_last(t: &Tensor) -> Tensor {
    assert!(t.rank() >= 1, "sum_last requires rank >= 1");
    let d = *t.dims().last().unwrap();
    let lead: Vec<usize> = t.dims()[..t.rank() - 1].to_vec();
    let rows = t.numel() / d.max(1);
    let mut out = vec![0.0f32; rows];
    for (r, o) in out.iter_mut().enumerate() {
        *o = t.data()[r * d..(r + 1) * d].iter().sum();
    }
    Tensor::from_parts(Shape(lead), out)
}

/// Index of the maximum element along the last axis, per row.
/// Ties resolve to the lowest index.
pub fn argmax_last(t: &Tensor) -> Vec<usize> {
    assert!(t.rank() >= 1, "argmax_last requires rank >= 1");
    let d = *t.dims().last().unwrap();
    assert!(d > 0, "argmax_last: empty last axis");
    let rows = t.numel() / d;
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &t.data()[r * d..(r + 1) * d];
        let mut best = 0usize;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out.push(best);
    }
    out
}

/// Maximum element of the whole tensor.
///
/// # Panics
/// Panics on an empty tensor.
pub fn max_all(t: &Tensor) -> f32 {
    assert!(t.numel() > 0, "max_all on empty tensor");
    t.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(sum_all(&t).item(), 10.0);
        assert_eq!(mean_all(&t).item(), 2.5);
    }

    #[test]
    fn sum_to_trailing_bias_grad() {
        // grad of [2,3] broadcast over [D=3] bias
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0], &[2, 3]).unwrap();
        let r = sum_to_trailing(&g, &[3]);
        assert_eq!(r.data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn sum_to_trailing_scalar() {
        let g = Tensor::ones(&[4, 5]);
        let r = sum_to_trailing(&g, &[]);
        assert_eq!(r.item(), 20.0);
    }

    #[test]
    fn sum_last_shapes() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        let s = sum_last(&t);
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.at(&[0, 0]), 0.0 + 1.0 + 2.0 + 3.0);
        assert_eq!(s.at(&[1, 2]), 20.0 + 21.0 + 22.0 + 23.0);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.7, 0.2, 0.3], &[2, 3]).unwrap();
        assert_eq!(argmax_last(&t), vec![1, 0]);
    }

    #[test]
    fn argmax_tie_lowest_index() {
        let t = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]).unwrap();
        assert_eq!(argmax_last(&t), vec![0]);
    }
}

//! Optimizers, gradient clipping, and learning-rate schedules.
//!
//! Optimizers hold per-parameter state keyed by position in the parameter
//! list; callers must pass the same parameter list every step (the model
//! registries in `ratatouille-models` guarantee this).

use crate::autograd::Var;
use crate::ops;
use crate::tensor::Tensor;

/// A first-order optimizer over a fixed list of parameters.
pub trait Optimizer {
    /// Apply one update step using the gradients currently accumulated on
    /// `params`, then leave the gradients intact (call
    /// [`zero_grads`] separately).
    fn step(&mut self, params: &[Var]);

    /// The current learning rate.
    fn lr(&self) -> f32;

    /// Override the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Clear gradients on all parameters.
pub fn zero_grads(params: &[Var]) {
    for p in params {
        p.zero_grad();
    }
}

/// Global-norm gradient clipping: if the joint L2 norm of all gradients
/// exceeds `max_norm`, scale every gradient by `max_norm / norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for p in params {
        if let Some(g) = p.grad() {
            // xlint: allow(accum-discipline): f64-widened norm accumulation in parameter order
            sq += g.data().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>();
        }
    }
    let norm = (sq.sqrt()) as f32;
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for p in params {
            if let Some(g) = p.grad() {
                p.0.borrow_mut().grad = Some(ops::scale(&g, s));
            }
        }
    }
    norm
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// SGD with learning rate `lr` and momentum coefficient `momentum`
    /// (0 disables momentum).
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[Var]) {
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        for (i, p) in params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let update = if self.momentum > 0.0 {
                let v = match &self.velocity[i] {
                    Some(v) => ops::add(&ops::scale(v, self.momentum), &g),
                    None => g.clone(),
                };
                self.velocity[i] = Some(v.clone());
                v
            } else {
                g
            };
            p.set_value(ops::sub(&p.value(), &ops::scale(&update, self.lr)));
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Per-parameter Adam/AdamW state.
#[derive(Clone)]
struct AdamState {
    m: Tensor,
    v: Tensor,
}

/// Adam (Kingma & Ba) with optional decoupled weight decay (AdamW).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Decoupled weight decay (AdamW); 0 = plain Adam.
    weight_decay: f32,
    t: u64,
    state: Vec<Option<AdamState>>,
}

impl Adam {
    /// Plain Adam with the standard defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            state: Vec::new(),
        }
    }

    /// AdamW: Adam with decoupled weight decay.
    pub fn adamw(lr: f32, weight_decay: f32) -> Self {
        Adam {
            weight_decay,
            ..Adam::new(lr)
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Restore the step counter (checkpoint resume must preserve bias
    /// correction).
    pub fn set_steps(&mut self, t: u64) {
        self.t = t;
    }

    /// Export per-parameter `(m, v)` moment tensors for checkpointing,
    /// indexed like the parameter list passed to [`Optimizer::step`].
    pub fn export_state(&self) -> Vec<Option<(Tensor, Tensor)>> {
        self.state
            .iter()
            .map(|s| s.as_ref().map(|st| (st.m.clone(), st.v.clone())))
            .collect()
    }

    /// Restore moments exported by [`Adam::export_state`]. Must be paired
    /// with [`Adam::set_steps`] for exact resume.
    pub fn import_state(&mut self, state: Vec<Option<(Tensor, Tensor)>>) {
        self.state = state
            .into_iter()
            .map(|s| s.map(|(m, v)| AdamState { m, v }))
            .collect();
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Var]) {
        if self.state.len() < params.len() {
            self.state.resize(params.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let st = self.state[i].get_or_insert_with(|| AdamState {
                m: Tensor::zeros(g.dims()),
                v: Tensor::zeros(g.dims()),
            });
            st.m = ops::add(&ops::scale(&st.m, self.beta1), &ops::scale(&g, 1.0 - self.beta1));
            st.v = ops::add(
                &ops::scale(&st.v, self.beta2),
                &ops::scale(&ops::square(&g), 1.0 - self.beta2),
            );
            let val = p.value();
            let n = val.numel();
            let (md, vd, xd) = (st.m.data(), st.v.data(), val.data());
            let mut out = Vec::with_capacity(n);
            for j in 0..n {
                let mhat = md[j] / bc1;
                let vhat = vd[j] / bc2;
                let mut x = xd[j] - self.lr * mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    x -= self.lr * self.weight_decay * xd[j];
                }
                out.push(x);
            }
            p.set_value(Tensor::from_vec(out, val.dims()).unwrap());
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// A learning-rate schedule: step index → learning rate.
pub trait LrSchedule {
    /// Learning rate for optimization step `step` (0-based).
    fn lr_at(&self, step: u64) -> f32;
}

/// Constant learning rate.
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _step: u64) -> f32 {
        self.0
    }
}

/// Linear warmup to `peak` over `warmup` steps, then cosine decay to
/// `floor` at `total` steps (the GPT-2 fine-tuning schedule).
pub struct WarmupCosine {
    /// Peak learning rate reached at the end of warmup.
    pub peak: f32,
    /// Final learning rate after `total` steps.
    pub floor: f32,
    /// Warmup length in steps.
    pub warmup: u64,
    /// Total schedule length in steps.
    pub total: u64,
}

impl LrSchedule for WarmupCosine {
    fn lr_at(&self, step: u64) -> f32 {
        if self.warmup > 0 && step < self.warmup {
            return self.peak * (step + 1) as f32 / self.warmup as f32;
        }
        if step >= self.total {
            return self.floor;
        }
        let progress =
            (step - self.warmup) as f32 / (self.total - self.warmup).max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.floor + (self.peak - self.floor) * cos
    }
}

/// Multiply the LR by `gamma` every `every` steps.
pub struct StepDecay {
    /// Initial learning rate.
    pub base: f32,
    /// Multiplicative decay factor per interval.
    pub gamma: f32,
    /// Interval length in steps.
    pub every: u64,
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, step: u64) -> f32 {
        self.base * self.gamma.powi((step / self.every.max(1)) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)² and check convergence.
    fn quadratic_converges(mut opt: impl Optimizer, steps: usize, tol: f32) {
        let x = Var::leaf(Tensor::scalar(0.0));
        for _ in 0..steps {
            zero_grads(&[x.clone()]);
            let diff = x.add_scalar(-3.0);
            let loss = diff.mul(&diff);
            loss.backward();
            opt.step(&[x.clone()]);
        }
        let v = x.value().item();
        assert!((v - 3.0).abs() < tol, "converged to {v}, expected 3");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        quadratic_converges(Sgd::new(0.1, 0.0), 100, 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        quadratic_converges(Sgd::new(0.05, 0.9), 200, 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        quadratic_converges(Adam::new(0.3), 200, 1e-2);
    }

    #[test]
    fn adamw_decays_unused_weights() {
        // A parameter with zero gradient should still shrink under AdamW...
        // except AdamW only applies decay when a gradient exists (our step
        // skips grad-less params entirely — document that contract).
        let p = Var::leaf(Tensor::scalar(1.0));
        let mut opt = Adam::adamw(0.1, 0.5);
        opt.step(&[p.clone()]);
        assert_eq!(p.value().item(), 1.0, "no grad -> no update at all");
        // With a tiny gradient, the decay term dominates and the weight shrinks.
        p.0.borrow_mut().grad = Some(Tensor::scalar(1e-12));
        opt.step(&[p.clone()]);
        assert!(p.value().item() < 1.0);
    }

    #[test]
    fn clip_reduces_large_gradients() {
        let p = Var::leaf(Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap());
        p.0.borrow_mut().grad = Some(Tensor::from_vec(vec![30.0, 40.0], &[2]).unwrap());
        let norm = clip_grad_norm(&[p.clone()], 5.0);
        assert!((norm - 50.0).abs() < 1e-3);
        let g = p.grad().unwrap();
        assert!((g.l2_norm() - 5.0).abs() < 1e-3);
        // direction preserved
        assert!((g.data()[0] / g.data()[1] - 0.75).abs() < 1e-4);
    }

    #[test]
    fn clip_leaves_small_gradients() {
        let p = Var::leaf(Tensor::scalar(0.0));
        p.0.borrow_mut().grad = Some(Tensor::scalar(0.5));
        clip_grad_norm(&[p.clone()], 5.0);
        assert_eq!(p.grad().unwrap().item(), 0.5);
    }

    #[test]
    fn warmup_cosine_shape() {
        let s = WarmupCosine {
            peak: 1.0,
            floor: 0.1,
            warmup: 10,
            total: 110,
        };
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(50) < 1.0);
        assert!(s.lr_at(50) > 0.1);
        assert!((s.lr_at(109) - 0.1).abs() < 0.05);
        assert_eq!(s.lr_at(500), 0.1);
    }

    #[test]
    fn step_decay_halves() {
        let s = StepDecay {
            base: 1.0,
            gamma: 0.5,
            every: 10,
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(10), 0.5);
        assert_eq!(s.lr_at(25), 0.25);
    }

    #[test]
    fn adam_resume_preserves_bias_correction() {
        let mut a = Adam::new(0.1);
        a.set_steps(100);
        assert_eq!(a.steps(), 100);
    }
}

//! Weight initialization.
//!
//! The whitelisted `rand` crate ships only uniform sampling, so Gaussian
//! draws use the Box–Muller transform implemented here.

use ratatouille_util::rng::{Rng, RngExt};

use crate::tensor::Tensor;

/// One standard-normal sample via Box–Muller.
#[inline]
pub fn randn_scalar(rng: &mut impl Rng) -> f32 {
    // Guard against ln(0).
    let u1: f32 = rng.random::<f32>().max(1e-12);
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Tensor of i.i.d. `N(0, std²)` samples.
pub fn randn(rng: &mut impl Rng, dims: &[usize], std: f32) -> Tensor {
    let n: usize = dims.iter().product();
    let data = (0..n).map(|_| randn_scalar(rng) * std).collect();
    Tensor::from_vec(data, dims).expect("randn: invalid shape")
}

/// Tensor of i.i.d. `U(lo, hi)` samples.
pub fn uniform(rng: &mut impl Rng, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = dims.iter().product();
    let data = (0..n).map(|_| rng.random::<f32>() * (hi - lo) + lo).collect();
    Tensor::from_vec(data, dims).expect("uniform: invalid shape")
}

/// Xavier/Glorot uniform init for a `[fan_in, fan_out]` weight matrix.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, &[fan_in, fan_out], -limit, limit)
}

/// Kaiming/He normal init (`std = sqrt(2/fan_in)`), for ReLU-family nets.
pub fn kaiming_normal(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    randn(rng, &[fan_in, fan_out], (2.0 / fan_in as f32).sqrt())
}

/// GPT-2 style init: `N(0, 0.02²)` for a matrix of the given shape.
pub fn gpt2_normal(rng: &mut impl Rng, dims: &[usize]) -> Tensor {
    randn(rng, dims, 0.02)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratatouille_util::rng::StdRng;
    use ratatouille_util::rng::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = randn(&mut rng, &[20_000], 1.0);
        let n = t.numel() as f32;
        let mean = t.data().iter().sum::<f32>() / n;
        let var = t.data().iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(!t.has_non_finite());
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, &[1000], -0.5, 0.5);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn xavier_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&mut rng, 100, 200);
        let limit = (6.0f32 / 300.0).sqrt();
        assert!(t.max_abs() <= limit);
        assert_eq!(t.dims(), &[100, 200]);
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = randn(&mut StdRng::seed_from_u64(7), &[64], 0.02);
        let b = randn(&mut StdRng::seed_from_u64(7), &[64], 0.02);
        assert_eq!(a, b);
    }
}

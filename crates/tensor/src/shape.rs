//! Shape and stride arithmetic for contiguous row-major tensors.

use crate::error::TensorError;

/// An n-dimensional shape.
///
/// Shapes are small (rank ≤ 4 in practice for this workspace) so a plain
/// `Vec<usize>` is fine; the newtype carries the arithmetic helpers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Create a shape from dimensions, validating that the element count
    /// does not overflow `usize`.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        let mut numel: usize = 1;
        for &d in dims {
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| TensorError::InvalidShape(format!("{dims:?} overflows usize")))?;
        }
        Ok(Shape(dims.to_vec()))
    }

    /// Dimensions as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (product of dims; 1 for a scalar/rank-0 shape).
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset for a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if `idx` has wrong rank or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index rank {} != shape rank {}",
            idx.len(),
            self.0.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.0[d],
                "index {i} out of bounds for dim {d} of size {}",
                self.0[d]
            );
            off += i * s;
        }
        off
    }

    /// Whether `other` can broadcast against `self` as a trailing suffix,
    /// i.e. `other.dims()` equals the last `other.rank()` dims of `self`.
    ///
    /// This is the only broadcasting rule the crate supports (it covers
    /// bias addition `[B,T,D] + [D]` and row broadcast `[N,D] + [D]`),
    /// keeping kernels simple and predictable.
    pub fn is_trailing_broadcast_of(&self, other: &Shape) -> bool {
        let r = other.rank();
        r <= self.rank() && self.0[self.rank() - r..] == other.0[..]
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]).unwrap();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn offset_computes_flat_index() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_panics_out_of_bounds() {
        let s = Shape::new(&[2, 3]).unwrap();
        s.offset(&[2, 0]);
    }

    #[test]
    fn trailing_broadcast() {
        let big = Shape::new(&[2, 3, 4]).unwrap();
        assert!(big.is_trailing_broadcast_of(&Shape::new(&[4]).unwrap()));
        assert!(big.is_trailing_broadcast_of(&Shape::new(&[3, 4]).unwrap()));
        assert!(big.is_trailing_broadcast_of(&big));
        assert!(!big.is_trailing_broadcast_of(&Shape::new(&[3]).unwrap()));
        assert!(!big.is_trailing_broadcast_of(&Shape::new(&[2, 3, 4, 5]).unwrap()));
    }

    #[test]
    fn overflow_is_rejected() {
        assert!(Shape::new(&[usize::MAX, 2]).is_err());
    }

    #[test]
    fn zero_dim_is_allowed_with_zero_elements() {
        let s = Shape::new(&[0, 5]).unwrap();
        assert_eq!(s.numel(), 0);
    }
}

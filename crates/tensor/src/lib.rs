//! # ratatouille-tensor
//!
//! A small, dependency-light CPU tensor library with reverse-mode automatic
//! differentiation. It is the numerical substrate for the Ratatouille
//! reproduction: the paper fine-tunes LSTM and GPT-2 language models with
//! PyTorch/HuggingFace on GPU; this crate provides the equivalent
//! functionality from scratch in Rust at laptop scale.
//!
//! ## Layers
//!
//! * [`Tensor`] — an immutable, contiguous, row-major n-d array value
//!   type with cheap clones (shared storage), generic over a sealed
//!   [`Element`] storage dtype (`f32` by default; [`F16`] and `i8` are
//!   inference-only storage formats — see [`dtype`] and [`ops::quant`]).
//! * Pure functional ops on [`Tensor`] (`matmul`, elementwise math,
//!   reductions, softmax, layer norm, embedding lookup, …).
//! * [`Var`] — a node in a dynamically-built computation graph. Calling ops
//!   on `Var`s records the graph; [`Var::backward`] runs reverse-mode
//!   autodiff and accumulates gradients into leaf variables.
//! * [`optim`] — SGD / Adam / AdamW optimizers, global-norm gradient
//!   clipping and learning-rate schedules.
//! * [`serialize`] — a compact binary format for named tensor collections
//!   (checkpoints), with integrity checking.
//! * [`par`] — scoped-thread data parallelism used by the heavy kernels;
//!   the worker count is a process-wide runtime setting so benchmarks can
//!   sweep it (this stands in for the paper's CPU-vs-A100 comparison).
//!
//! ## Conventions
//!
//! Shape errors are programming errors and panic with a descriptive message
//! (as in `ndarray`); fallible construction from untrusted input returns
//! [`TensorError`]. All randomness flows through caller-provided [`rand`]
//! RNGs so every experiment in the reproduction is seedable.
//!
//! ## Example
//!
//! ```
//! use ratatouille_tensor::{Tensor, Var};
//!
//! // y = sum((a.b) * 3), da = 3*b, db = 3*a
//! let a = Var::leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
//! let b = Var::leaf(Tensor::from_vec(vec![4.0, 5.0], &[2]).unwrap());
//! let y = a.mul(&b).scale(3.0).sum();
//! y.backward();
//! assert_eq!(a.grad().unwrap().data(), &[12.0, 15.0]);
//! assert_eq!(b.grad().unwrap().data(), &[3.0, 6.0]);
//! ```
#![warn(missing_docs)]


pub mod autograd;
pub mod dtype;
pub mod error;
pub mod init;
pub mod ops;
pub mod optim;
pub mod par;
pub mod serialize;
pub mod shape;
pub mod tensor;
pub mod var_ops;

pub use autograd::Var;
pub use dtype::{DType, Element, F16};
pub use error::TensorError;
pub use serialize::{DynTensor, DynTensorMap, TensorMap};
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

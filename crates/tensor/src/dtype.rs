//! Element dtypes for tensor storage: the sealed [`Element`] trait and the
//! software [`F16`] half-precision storage type.
//!
//! The tensor core is generic over its storage element so inference-time
//! memory formats (f16 KV caches, int8 quantized weights) reuse the same
//! `Tensor` machinery as training. The trait is **sealed**: exactly three
//! storage types exist — `f32` (the only trainable dtype; autograd's `Var`
//! is hardwired to `Tensor<f32>`), [`F16`] (storage-only half precision,
//! converted in software on load/store), and `i8` (raw quantized codes;
//! per-row scales live next to the codes in
//! [`crate::ops::quant::QuantizedMatrix`], not inside the tensor).
//!
//! Keeping the set closed is what lets kernels dispatch per dtype without
//! trait objects, and it makes "training stays f32" a compile-time fact
//! rather than a runtime check: there is no `Var<F16>` to construct.

use std::fmt;

mod sealed {
    /// Private supertrait: only types named here may implement `Element`.
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for super::F16 {}
    impl Sealed for i8 {}
}

/// Runtime tag identifying a storage dtype.
///
/// Used for checkpoint section headers, metric labels and error messages.
/// The `name()` strings are stable public identifiers (they appear in
/// `/metrics` label values and in the `?dtype=` serving parameter).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float — the training and default inference dtype.
    F32,
    /// 16-bit IEEE half float, software-converted storage.
    F16,
    /// 8-bit signed integer quantized codes (scales stored externally).
    I8,
}

impl DType {
    /// Stable lowercase identifier (`"f32"`, `"f16"`, `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::F16 => "f16",
            DType::I8 => "int8",
        }
    }

    /// Bytes per element in serialized form.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 => 2,
            DType::I8 => 1,
        }
    }

    /// One-byte tag used in checkpoint entry headers.
    pub fn tag(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::F16 => 1,
            DType::I8 => 2,
        }
    }

    /// Inverse of [`DType::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<DType> {
        match tag {
            0 => Some(DType::F32),
            1 => Some(DType::F16),
            2 => Some(DType::I8),
            _ => None,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A storage element for [`crate::Tensor`].
///
/// Sealed: implemented for `f32`, [`F16`] and `i8` only. Besides the
/// conversions, the trait carries the two decode-path inner loops that must
/// be dtype-dispatched (`f32`-query dot against a stored row, and the
/// attention context `axpy`), so the fused incremental-attention kernel can
/// be written once, generic over the KV-cache storage dtype, while each
/// dtype keeps its own SIMD path.
pub trait Element:
    sealed::Sealed + Copy + Send + Sync + Default + PartialEq + fmt::Debug + 'static
{
    /// The runtime tag for this storage type.
    const DTYPE: DType;

    /// Narrow an `f32` into this storage type (rounding/clamping as the
    /// dtype requires; identity for `f32`).
    fn from_f32(v: f32) -> Self;

    /// Widen to `f32` (exact for `f32`, `F16` and `i8`).
    fn to_f32(self) -> f32;

    /// Format one element for `Tensor`'s `Debug` preview.
    fn fmt_elem(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Dot product of an `f32` query row against a row stored in this
    /// dtype, with a fixed per-call reduction order (the decode attention
    /// score kernel).
    fn dot_with_f32(a: &[f32], b: &[Self]) -> f32;

    /// `y[j] += alpha * x[j].to_f32()` — the decode attention context
    /// update against a stored value row.
    fn axpy_into_f32(alpha: f32, x: &[Self], y: &mut [f32]);
}

impl Element for f32 {
    const DTYPE: DType = DType::F32;

    #[inline]
    fn from_f32(v: f32) -> Self {
        v
    }

    #[inline]
    fn to_f32(self) -> f32 {
        self
    }

    fn fmt_elem(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:.4}")
    }

    #[inline]
    fn dot_with_f32(a: &[f32], b: &[Self]) -> f32 {
        crate::ops::simd::dot(a, b)
    }

    #[inline]
    fn axpy_into_f32(alpha: f32, x: &[Self], y: &mut [f32]) {
        crate::ops::simd::axpy(alpha, x, y);
    }
}

/// IEEE 754 binary16 storage, converted in software.
///
/// This is a *storage* type only: arithmetic always happens in `f32` after
/// widening. Conversion from `f32` uses round-to-nearest-even (matching
/// hardware `vcvtps2ph` with default rounding), so results are identical
/// whether the widening/narrowing runs through the scalar fallback or the
/// F16C fast path.
#[derive(Copy, Clone, Default, PartialEq, Eq)]
#[repr(transparent)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);

    /// Reinterpret raw binary16 bits.
    #[inline]
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// The raw binary16 bits.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl Element for F16 {
    const DTYPE: DType = DType::F16;

    #[inline]
    fn from_f32(v: f32) -> Self {
        F16(f32_to_f16_bits(v))
    }

    #[inline]
    fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    fn fmt_elem(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.to_f32())
    }

    #[inline]
    fn dot_with_f32(a: &[f32], b: &[Self]) -> f32 {
        crate::ops::simd::dot_f16(a, b)
    }

    #[inline]
    fn axpy_into_f32(alpha: f32, x: &[Self], y: &mut [f32]) {
        crate::ops::simd::axpy_f16(alpha, x, y);
    }
}

impl Element for i8 {
    const DTYPE: DType = DType::I8;

    #[inline]
    fn from_f32(v: f32) -> Self {
        v.round().clamp(-128.0, 127.0) as i8
    }

    #[inline]
    fn to_f32(self) -> f32 {
        self as f32
    }

    fn fmt_elem(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }

    #[inline]
    fn dot_with_f32(a: &[f32], b: &[Self]) -> f32 {
        crate::ops::quant::dot_f32_i8(a, b)
    }

    #[inline]
    fn axpy_into_f32(alpha: f32, x: &[Self], y: &mut [f32]) {
        crate::ops::quant::axpy_i8_into_f32(alpha, x, y);
    }
}

/// `f32` → binary16 bits with round-to-nearest-even; overflow saturates to
/// ±inf, values below the smallest subnormal flush to signed zero, NaN is
/// preserved as a quiet NaN.
pub(crate) fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp_f32 = (bits >> 23) & 0xff;
    let mant = bits & 0x007f_ffff;
    if exp_f32 == 0xff {
        // inf / NaN: keep a quiet-NaN payload bit so NaN stays NaN
        let m = if mant == 0 {
            0
        } else {
            0x0200 | ((mant >> 13) as u16 & 0x03ff)
        };
        return sign | 0x7c00 | m;
    }
    let exp = exp_f32 as i32 - 127 + 15;
    if exp >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if exp <= 0 {
        // subnormal range (or underflow to zero)
        if exp < -10 {
            return sign;
        }
        let m = mant | 0x0080_0000; // restore implicit leading bit
        let shift = (14 - exp) as u32; // 14..=24
        let half = m >> shift;
        let rem = m & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded = if rem > halfway || (rem == halfway && (half & 1) == 1) {
            half + 1
        } else {
            half
        };
        return sign | rounded as u16;
    }
    // normal range: 13 mantissa bits are dropped, round-to-nearest-even;
    // a mantissa carry correctly increments the exponent (possibly to inf)
    let half = ((exp as u32) << 10) | (mant >> 13);
    let rem = mant & 0x1fff;
    let rounded = if rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1) {
        half + 1
    } else {
        half
    };
    sign | rounded as u16
}

/// Binary16 bits → `f32` (exact: every finite f16 value is representable).
pub(crate) fn f16_bits_to_f32(h: u16) -> f32 {
    let negative = h & 0x8000 != 0;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let magnitude = if exp == 0 {
        // zero / subnormal: value is mant * 2^-24
        mant as f32 * f32::from_bits(0x3380_0000)
    } else if exp == 0x1f {
        if mant == 0 {
            f32::INFINITY
        } else {
            f32::NAN
        }
    } else {
        f32::from_bits(((exp + 112) << 23) | (mant << 13))
    };
    if negative {
        -magnitude
    } else {
        magnitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_f16_values() {
        assert_eq!(F16::from_f32(0.0).to_bits(), 0x0000);
        assert_eq!(F16::from_f32(-0.0).to_bits(), 0x8000);
        assert_eq!(F16::from_f32(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f32(-2.0).to_bits(), 0xc000);
        assert_eq!(F16::from_f32(65504.0).to_bits(), 0x7bff); // f16 max
        assert_eq!(F16::from_f32(f32::INFINITY).to_bits(), 0x7c00);
        assert_eq!(F16::from_f32(1e30).to_bits(), 0x7c00); // overflow → inf
        assert_eq!(F16::from_f32(6e-8).to_bits(), 0x0001); // smallest subnormal
        assert_eq!(F16::from_f32(1e-10).to_bits(), 0x0000); // underflow → 0
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; the
        // even neighbor (1.0) wins.
        assert_eq!(F16::from_f32(1.0 + 2f32.powi(-11)).to_bits(), 0x3c00);
        // 1 + 3*2^-11 is halfway between two f16s whose lower one is odd,
        // so it rounds up.
        assert_eq!(F16::from_f32(1.0 + 3.0 * 2f32.powi(-11)).to_bits(), 0x3c02);
        // 65520 is halfway between f16 max and 2^16; ties-to-even → inf.
        assert_eq!(F16::from_f32(65520.0).to_bits(), 0x7c00);
    }

    #[test]
    fn f16_round_trip_is_exhaustively_exact() {
        // Every non-NaN f16 bit pattern must survive f16 → f32 → f16.
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1f;
            let mant = h & 0x03ff;
            if exp == 0x1f && mant != 0 {
                continue; // NaN payloads are not preserved bit-exactly
            }
            let back = F16::from_f32(F16::from_bits(h).to_f32()).to_bits();
            assert_eq!(back, h, "round trip broke for bits {h:#06x}");
        }
    }

    #[test]
    fn i8_element_rounds_and_clamps() {
        assert_eq!(<i8 as Element>::from_f32(3.4), 3);
        assert_eq!(<i8 as Element>::from_f32(-3.6), -4);
        assert_eq!(<i8 as Element>::from_f32(300.0), 127);
        assert_eq!(<i8 as Element>::from_f32(-300.0), -128);
        assert_eq!(<i8 as Element>::to_f32(-5), -5.0);
    }

    #[test]
    fn dtype_tags_round_trip() {
        for d in [DType::F32, DType::F16, DType::I8] {
            assert_eq!(DType::from_tag(d.tag()), Some(d));
        }
        assert_eq!(DType::from_tag(9), None);
    }
}

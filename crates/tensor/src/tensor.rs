//! The immutable tensor value type.

use std::sync::Arc;

use crate::dtype::{DType, Element};
use crate::error::TensorError;
use crate::shape::Shape;

/// A contiguous, row-major, immutable tensor, generic over its storage
/// element (default `f32`).
///
/// Storage is shared behind an [`Arc`], so `clone` is O(1). Ops that produce
/// new data allocate a fresh buffer; ops that only reinterpret the shape
/// (`reshape`) share storage.
///
/// Only `Tensor<f32>` participates in autograd and training; `Tensor<F16>`
/// and `Tensor<i8>` are inference-time storage formats (KV caches,
/// quantized weights) produced by the conversion ops in
/// [`crate::ops::quant`]. That split is structural — [`crate::Var`] wraps
/// `Tensor<f32>` only, so a non-f32 tensor can never enter a gradient
/// graph.
#[derive(Clone)]
pub struct Tensor<E: Element = f32> {
    shape: Shape,
    data: Arc<Vec<E>>,
}

impl<E: Element> Tensor<E> {
    // ---------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------

    /// Build a tensor from a flat row-major buffer and a shape.
    pub fn from_vec(data: Vec<E>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.numel() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Arc::new(data),
        })
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    /// The storage dtype.
    #[inline]
    pub fn dtype(&self) -> DType {
        E::DTYPE
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimensions as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// The flat row-major data.
    #[inline]
    pub fn data(&self) -> &[E] {
        &self.data
    }

    /// Reinterpret the shape without copying (element count must match).
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor<E> {
        let shape = Shape::new(dims).expect("reshape: invalid shape");
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape {} -> {} changes element count",
            self.shape,
            shape
        );
        Tensor {
            shape,
            data: Arc::clone(&self.data),
        }
    }

    /// Copy out the data as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<E> {
        self.data.as_ref().clone()
    }

    /// Recover the owned buffer, without copying when this handle is the
    /// sole owner of the storage (clones otherwise). Lets hot loops
    /// round-trip a reusable scratch `Vec` through a [`Tensor`] — e.g.
    /// the batched decode step, which rebuilds a `[B, D]` activation
    /// tensor every layer without reallocating.
    pub fn into_vec(self) -> Vec<E> {
        match Arc::try_unwrap(self.data) {
            Ok(v) => v,
            Err(shared) => shared.as_ref().clone(),
        }
    }

    /// Internal: build from parts without re-validating (callers guarantee
    /// `data.len() == shape.numel()`).
    pub(crate) fn from_parts(shape: Shape, data: Vec<E>) -> Tensor<E> {
        debug_assert_eq!(shape.numel(), data.len());
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }
}

/// `f32`-only constructors and diagnostics (the training surface).
impl Tensor {
    /// A scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            shape: Shape(vec![]),
            data: Arc::new(vec![v]),
        }
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims).expect("zeros: invalid shape");
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![0.0; n]),
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Tensor filled with `v`.
    pub fn full(dims: &[usize], v: f32) -> Self {
        let shape = Shape::new(dims).expect("full: invalid shape");
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![v; n]),
        }
    }

    /// `[0, 1, 2, …, n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: Shape(vec![n]),
            data: Arc::new((0..n).map(|i| i as f32).collect()),
        }
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with {} elements",
            self.numel()
        );
        self.data[0]
    }

    /// True if any element is NaN or infinite. Used by training-loop
    /// diagnostics and failure-injection tests.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Maximum absolute element (0.0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        ratatouille_util::accum::max_abs_f32(self.data.iter().copied())
    }

    /// Euclidean norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        ratatouille_util::accum::sum_f32(self.data.iter().map(|&v| v * v)).sqrt()
    }

    /// Elementwise approximate equality within `tol`, shape-sensitive.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

impl<E: Element> std::fmt::Debug for Tensor<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            v.fmt_elem(f)?;
        }
        if self.numel() > PREVIEW {
            write!(f, ", … {} more", self.numel() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl<E: Element> PartialEq for Tensor<E> {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::F16;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).is_err());
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn clone_shares_storage() {
        let t = Tensor::zeros(&[1024]);
        let u = t.clone();
        assert!(std::ptr::eq(t.data().as_ptr(), u.data().as_ptr()));
    }

    #[test]
    fn into_vec_recovers_sole_owned_storage_without_copy() {
        let t = Tensor::arange(8);
        let before = t.data().as_ptr();
        let v = t.into_vec();
        assert!(std::ptr::eq(before, v.as_ptr()), "sole owner must not copy");
        // A shared handle falls back to cloning and leaves the peer valid.
        let t = Tensor::from_vec(v, &[8]).unwrap();
        let peer = t.clone();
        let w = t.into_vec();
        assert_eq!(w, peer.to_vec());
        assert!(!std::ptr::eq(peer.data().as_ptr(), w.as_ptr()));
    }

    #[test]
    fn reshape_shares_storage() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]);
        assert_eq!(r.at(&[1, 2]), 5.0);
        assert!(std::ptr::eq(t.data().as_ptr(), r.data().as_ptr()));
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_wrong_count_panics() {
        Tensor::arange(6).reshape(&[4]);
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn non_finite_detection() {
        let t = Tensor::from_vec(vec![1.0, f32::NAN], &[2]).unwrap();
        assert!(t.has_non_finite());
        assert!(!Tensor::ones(&[3]).has_non_finite());
    }

    #[test]
    fn allclose_respects_shape() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[4]);
        assert!(!a.allclose(&b, 1e-6));
        assert!(a.allclose(&a.clone(), 0.0));
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![3.0, -4.0], &[2]).unwrap();
        assert_eq!(t.l2_norm(), 5.0);
        assert_eq!(t.max_abs(), 4.0);
    }

    #[test]
    fn non_f32_storage_dtypes() {
        let q: Tensor<i8> = Tensor::from_vec(vec![1i8, -2, 3, -4], &[2, 2]).unwrap();
        assert_eq!(q.dtype(), DType::I8);
        assert_eq!(q.data(), &[1, -2, 3, -4]);
        let h: Tensor<F16> = Tensor::from_vec(vec![F16::from_f32(1.5); 3], &[3]).unwrap();
        assert_eq!(h.dtype(), DType::F16);
        assert_eq!(h.data()[0].to_f32(), 1.5);
        // clone/reshape share storage for every dtype
        let r = q.reshape(&[4]);
        assert!(std::ptr::eq(q.data().as_ptr(), r.data().as_ptr()));
    }

    #[test]
    fn debug_preview_per_dtype() {
        let f = format!("{:?}", Tensor::from_vec(vec![1.25f32, 2.0], &[2]).unwrap());
        assert!(f.contains("1.2500"), "{f}");
        let q = format!("{:?}", Tensor::from_vec(vec![-3i8, 7], &[2]).unwrap());
        assert!(q.contains("-3, 7"), "{q}");
    }
}

//! The immutable tensor value type.

use std::sync::Arc;

use crate::error::TensorError;
use crate::shape::Shape;

/// A contiguous, row-major, immutable `f32` tensor.
///
/// Storage is shared behind an [`Arc`], so `clone` is O(1). Ops that produce
/// new data allocate a fresh buffer; ops that only reinterpret the shape
/// (`reshape`) share storage.
#[derive(Clone)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    // ---------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------

    /// Build a tensor from a flat row-major buffer and a shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.numel() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Arc::new(data),
        })
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            shape: Shape(vec![]),
            data: Arc::new(vec![v]),
        }
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims).expect("zeros: invalid shape");
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![0.0; n]),
        }
    }

    /// All-ones tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Tensor filled with `v`.
    pub fn full(dims: &[usize], v: f32) -> Self {
        let shape = Shape::new(dims).expect("full: invalid shape");
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![v; n]),
        }
    }

    /// `[0, 1, 2, …, n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: Shape(vec![n]),
            data: Arc::new((0..n).map(|i| i as f32).collect()),
        }
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimensions as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// The flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// The single value of a rank-0 or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor with {} elements",
            self.numel()
        );
        self.data[0]
    }

    /// Reinterpret the shape without copying (element count must match).
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims).expect("reshape: invalid shape");
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape {} -> {} changes element count",
            self.shape,
            shape
        );
        Tensor {
            shape,
            data: Arc::clone(&self.data),
        }
    }

    /// Copy out the data as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<f32> {
        self.data.as_ref().clone()
    }

    /// Internal: build from parts without re-validating (callers guarantee
    /// `data.len() == shape.numel()`).
    pub(crate) fn from_parts(shape: Shape, data: Vec<f32>) -> Tensor {
        debug_assert_eq!(shape.numel(), data.len());
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// True if any element is NaN or infinite. Used by training-loop
    /// diagnostics and failure-injection tests.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Maximum absolute element (0.0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        ratatouille_util::accum::max_abs_f32(self.data.iter().copied())
    }

    /// Euclidean norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        ratatouille_util::accum::sum_f32(self.data.iter().map(|&v| v * v)).sqrt()
    }

    /// Elementwise approximate equality within `tol`, shape-sensitive.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.numel() > PREVIEW {
            write!(f, ", … {} more", self.numel() - PREVIEW)?;
        }
        write!(f, "]")
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).is_err());
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn clone_shares_storage() {
        let t = Tensor::zeros(&[1024]);
        let u = t.clone();
        assert!(std::ptr::eq(t.data().as_ptr(), u.data().as_ptr()));
    }

    #[test]
    fn reshape_shares_storage() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]);
        assert_eq!(r.at(&[1, 2]), 5.0);
        assert!(std::ptr::eq(t.data().as_ptr(), r.data().as_ptr()));
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_wrong_count_panics() {
        Tensor::arange(6).reshape(&[4]);
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    fn non_finite_detection() {
        let t = Tensor::from_vec(vec![1.0, f32::NAN], &[2]).unwrap();
        assert!(t.has_non_finite());
        assert!(!Tensor::ones(&[3]).has_non_finite());
    }

    #[test]
    fn allclose_respects_shape() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[4]);
        assert!(!a.allclose(&b, 1e-6));
        assert!(a.allclose(&a.clone(), 0.0));
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![3.0, -4.0], &[2]).unwrap();
        assert_eq!(t.l2_norm(), 5.0);
        assert_eq!(t.max_abs(), 4.0);
    }
}

//! Error type for fallible tensor operations.

use std::fmt;

/// Errors returned by fallible tensor APIs (construction from untrusted
/// data, deserialization, …).
///
/// Shape mismatches inside hot-path ops are treated as programming errors
/// and panic instead; see the crate docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A shape with a zero-sized or overflowing dimension product.
    InvalidShape(String),
    /// Two shapes that were required to be compatible are not.
    Incompatible {
        /// Human-readable description of the incompatibility.
        context: String,
    },
    /// Checkpoint / serialized payload is malformed.
    Corrupt(String),
    /// An I/O error while reading or writing a checkpoint.
    Io(String),
    /// A named tensor was not found in a checkpoint.
    MissingTensor(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "data length {actual} does not match shape element count {expected}"
            ),
            TensorError::InvalidShape(s) => write!(f, "invalid shape: {s}"),
            TensorError::Incompatible { context } => {
                write!(f, "incompatible shapes: {context}")
            }
            TensorError::Corrupt(s) => write!(f, "corrupt tensor payload: {s}"),
            TensorError::Io(s) => write!(f, "tensor i/o error: {s}"),
            TensorError::MissingTensor(name) => {
                write!(f, "tensor `{name}` not found in checkpoint")
            }
        }
    }
}

impl std::error::Error for TensorError {}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e.to_string())
    }
}

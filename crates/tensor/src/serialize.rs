//! Checkpoint serialization: named tensor collections in a compact binary
//! format with an integrity checksum.
//!
//! The paper's training environment (Google Colab) "crashed every 5 to 7
//! epochs"; the engineering answer is cheap, verifiable checkpoints. The
//! format is:
//!
//! ```text
//! magic   : 8 bytes  = "RTCKPT01"
//! count   : u32 LE
//! entry*  : name_len u16 | name utf8 | rank u8 | dims u32* | numel u64 | f32 LE*
//! checksum: u64 LE   = FNV-1a over everything before it
//! ```

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use crate::error::TensorError;
use crate::tensor::Tensor;

const MAGIC: &[u8; 8] = b"RTCKPT01";

/// Little-endian cursor over a checkpoint payload; every read is
/// bounds-checked so truncated payloads surface as `Corrupt` errors.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TensorError> {
        if self.data.len() < n {
            return Err(TensorError::Corrupt(format!("truncated {what}")));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, TensorError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16_le(&mut self, what: &str) -> Result<u16, TensorError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32_le(&mut self, what: &str) -> Result<u32, TensorError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64_le(&mut self, what: &str) -> Result<u64, TensorError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f32_le(&mut self, what: &str) -> Result<f32, TensorError> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }
}

/// An ordered, named collection of tensors (a checkpoint section).
///
/// `BTreeMap` keeps serialization deterministic, so identical states
/// produce byte-identical checkpoints (useful for tests and dedup).
#[derive(Default, Clone, Debug)]
pub struct TensorMap {
    entries: BTreeMap<String, Tensor>,
}

impl TensorMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a named tensor.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) {
        self.entries.insert(name.into(), t);
    }

    /// Look up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Look up a tensor, erroring with the missing name.
    pub fn require(&self, name: &str) -> Result<&Tensor, TensorError> {
        self.entries
            .get(name)
            .ok_or_else(|| TensorError::MissingTensor(name.to_string()))
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate name → tensor in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.entries.iter()
    }

    /// Names in order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Serialize to bytes (with trailing checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, t) in &self.entries {
            assert!(name.len() <= u16::MAX as usize, "tensor name too long");
            buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
            assert!(t.rank() <= u8::MAX as usize);
            buf.push(t.rank() as u8);
            for &d in t.dims() {
                buf.extend_from_slice(&(d as u32).to_le_bytes());
            }
            buf.extend_from_slice(&(t.numel() as u64).to_le_bytes());
            for &v in t.data() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Deserialize from bytes, verifying magic and checksum.
    pub fn from_bytes(data: &[u8]) -> Result<Self, TensorError> {
        if data.len() < MAGIC.len() + 4 + 8 {
            return Err(TensorError::Corrupt("payload too short".into()));
        }
        let (body, sum_bytes) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        let computed = fnv1a(body);
        if stored != computed {
            return Err(TensorError::Corrupt(format!(
                "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            )));
        }
        let mut r = Reader { data: body };
        let magic = r.take(8, "magic")?;
        if magic != MAGIC {
            return Err(TensorError::Corrupt(format!(
                "bad magic {:?}",
                String::from_utf8_lossy(magic)
            )));
        }
        let count = r.u32_le("count")? as usize;
        let mut map = TensorMap::new();
        for _ in 0..count {
            let name_len = r.u16_le("entry header")? as usize;
            let name = String::from_utf8(r.take(name_len, "name")?.to_vec())
                .map_err(|_| TensorError::Corrupt("non-utf8 tensor name".into()))?;
            let rank = r.u8("rank")? as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u32_le("dims")? as usize);
            }
            let numel = r.u64_le("numel")? as usize;
            let expected: usize = dims.iter().product();
            if numel != expected {
                return Err(TensorError::Corrupt(format!(
                    "tensor `{name}`: numel {numel} != dims product {expected}"
                )));
            }
            if r.remaining() < numel * 4 {
                return Err(TensorError::Corrupt(format!(
                    "tensor `{name}`: truncated data"
                )));
            }
            let mut values = Vec::with_capacity(numel);
            for _ in 0..numel {
                values.push(r.f32_le("tensor data")?);
            }
            map.insert(name, Tensor::from_vec(values, &dims).map_err(|e| {
                TensorError::Corrupt(format!("bad tensor in checkpoint: {e}"))
            })?);
        }
        Ok(map)
    }

    /// Write to a file (atomically via a temp file + rename, so a crash
    /// mid-write never leaves a half-written checkpoint in place).
    pub fn save(&self, path: &Path) -> Result<(), TensorError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Self, TensorError> {
        let mut f = std::fs::File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Self::from_bytes(&buf)
    }
}

/// FNV-1a over a byte slice.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> TensorMap {
        let mut m = TensorMap::new();
        m.insert("w", Tensor::from_vec(vec![1.0, -2.5, 3.25], &[3]).unwrap());
        m.insert("b", Tensor::scalar(0.5));
        m.insert(
            "emb.table",
            Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]).unwrap(),
        );
        m
    }

    #[test]
    fn roundtrip_exact() {
        let m = sample_map();
        let bytes = m.to_bytes();
        let m2 = TensorMap::from_bytes(&bytes).unwrap();
        assert_eq!(m2.len(), 3);
        for (name, t) in m.iter() {
            assert_eq!(m2.get(name).unwrap(), t, "tensor `{name}` differs");
        }
    }

    #[test]
    fn deterministic_bytes() {
        assert_eq!(sample_map().to_bytes(), sample_map().to_bytes());
    }

    #[test]
    fn corruption_detected() {
        let bytes = sample_map().to_bytes();
        let mut bad = bytes.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        match TensorMap::from_bytes(&bad) {
            Err(TensorError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_map().to_bytes();
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                TensorMap::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let bytes = sample_map().to_bytes();
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        // fix checksum so only the magic is wrong
        let body_len = bad.len() - 8;
        let sum = fnv1a(&bad[..body_len]).to_le_bytes();
        bad[body_len..].copy_from_slice(&sum);
        match TensorMap::from_bytes(&bad) {
            Err(TensorError::Corrupt(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected magic error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_atomic() {
        let dir = std::env::temp_dir().join(format!("rt-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let m = sample_map();
        m.save(&path).unwrap();
        let m2 = TensorMap::load(&path).unwrap();
        assert_eq!(m2.get("w").unwrap(), m.get("w").unwrap());
        assert!(!path.with_extension("tmp").exists(), "temp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn require_reports_missing_name() {
        let m = sample_map();
        match m.require("nope") {
            Err(TensorError::MissingTensor(n)) => assert_eq!(n, "nope"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_map_roundtrips() {
        let m = TensorMap::new();
        let m2 = TensorMap::from_bytes(&m.to_bytes()).unwrap();
        assert!(m2.is_empty());
    }
}

//! Checkpoint serialization: named tensor collections in a compact binary
//! format with an integrity checksum.
//!
//! The paper's training environment (Google Colab) "crashed every 5 to 7
//! epochs"; the engineering answer is cheap, verifiable checkpoints. The
//! current format (version 2) tags every entry with its storage dtype so
//! quantized (int8) and half-precision (f16) tensors checkpoint alongside
//! f32 weights:
//!
//! ```text
//! magic   : 8 bytes  = "RTCKPT02"
//! count   : u32 LE
//! entry*  : name_len u16 | name utf8 | rank u8 | dims u32* | dtype u8 |
//!           numel u64 | payload (f32 LE* / f16 LE* / i8*)
//! checksum: u64 LE   = FNV-1a over everything before it
//! ```
//!
//! Version-1 checkpoints (`"RTCKPT01"`, no dtype byte, always f32) are
//! still read: the legacy path parses them entry-for-entry as f32, so
//! every checkpoint ever written by this workspace stays loadable.
//!
//! [`TensorMap`] is the f32-only view used by training and model loading;
//! [`DynTensorMap`] holds mixed dtypes for quantized-model artifacts.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

use crate::dtype::{DType, F16};
use crate::error::TensorError;
use crate::tensor::Tensor;

const MAGIC_V1: &[u8; 8] = b"RTCKPT01";
const MAGIC_V2: &[u8; 8] = b"RTCKPT02";

/// Little-endian cursor over a checkpoint payload; every read is
/// bounds-checked so truncated payloads surface as `Corrupt` errors.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], TensorError> {
        if self.data.len() < n {
            return Err(TensorError::Corrupt(format!("truncated {what}")));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, TensorError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16_le(&mut self, what: &str) -> Result<u16, TensorError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32_le(&mut self, what: &str) -> Result<u32, TensorError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64_le(&mut self, what: &str) -> Result<u64, TensorError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

/// A tensor of any storage dtype, as stored in a checkpoint entry.
#[derive(Clone, Debug, PartialEq)]
pub enum DynTensor {
    /// 32-bit float payload.
    F32(Tensor),
    /// Half-precision payload.
    F16(Tensor<F16>),
    /// int8 code payload (scales, if any, are separate entries).
    I8(Tensor<i8>),
}

impl DynTensor {
    /// The storage dtype tag of this entry.
    pub fn dtype(&self) -> DType {
        match self {
            DynTensor::F32(_) => DType::F32,
            DynTensor::F16(_) => DType::F16,
            DynTensor::I8(_) => DType::I8,
        }
    }

    /// Dimensions of the contained tensor.
    pub fn dims(&self) -> &[usize] {
        match self {
            DynTensor::F32(t) => t.dims(),
            DynTensor::F16(t) => t.dims(),
            DynTensor::I8(t) => t.dims(),
        }
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        match self {
            DynTensor::F32(t) => t.numel(),
            DynTensor::F16(t) => t.numel(),
            DynTensor::I8(t) => t.numel(),
        }
    }

    /// The contained f32 tensor, if this entry is f32.
    pub fn as_f32(&self) -> Option<&Tensor> {
        match self {
            DynTensor::F32(t) => Some(t),
            _ => None,
        }
    }
}

/// An ordered, named collection of tensors of possibly mixed dtypes.
///
/// `BTreeMap` keeps serialization deterministic, so identical states
/// produce byte-identical checkpoints (useful for tests and dedup).
#[derive(Default, Clone, Debug)]
pub struct DynTensorMap {
    entries: BTreeMap<String, DynTensor>,
}

impl DynTensorMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a named entry.
    pub fn insert(&mut self, name: impl Into<String>, t: DynTensor) {
        self.entries.insert(name.into(), t);
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&DynTensor> {
        self.entries.get(name)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate name → entry in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &DynTensor)> {
        self.entries.iter()
    }

    /// Serialize to version-2 bytes (with trailing checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V2);
        buf.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, t) in &self.entries {
            assert!(name.len() <= u16::MAX as usize, "tensor name too long");
            buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
            let dims = t.dims();
            assert!(dims.len() <= u8::MAX as usize);
            buf.push(dims.len() as u8);
            for &d in dims {
                buf.extend_from_slice(&(d as u32).to_le_bytes());
            }
            buf.push(t.dtype().tag());
            buf.extend_from_slice(&(t.numel() as u64).to_le_bytes());
            match t {
                DynTensor::F32(t) => {
                    for &v in t.data() {
                        buf.extend_from_slice(&v.to_le_bytes());
                    }
                }
                DynTensor::F16(t) => {
                    for &v in t.data() {
                        buf.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
                DynTensor::I8(t) => {
                    for &v in t.data() {
                        buf.push(v as u8);
                    }
                }
            }
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Deserialize version-1 or version-2 bytes, verifying magic and
    /// checksum. Version-1 entries (untagged) load as f32.
    pub fn from_bytes(data: &[u8]) -> Result<Self, TensorError> {
        if data.len() < MAGIC_V2.len() + 4 + 8 {
            return Err(TensorError::Corrupt("payload too short".into()));
        }
        let (body, sum_bytes) = data.split_at(data.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
        let computed = fnv1a(body);
        if stored != computed {
            return Err(TensorError::Corrupt(format!(
                "checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            )));
        }
        let mut r = Reader { data: body };
        let magic = r.take(8, "magic")?;
        let tagged = if magic == MAGIC_V2 {
            true
        } else if magic == MAGIC_V1 {
            false
        } else {
            return Err(TensorError::Corrupt(format!(
                "bad magic {:?}",
                String::from_utf8_lossy(magic)
            )));
        };
        let count = r.u32_le("count")? as usize;
        let mut map = DynTensorMap::new();
        for _ in 0..count {
            let name_len = r.u16_le("entry header")? as usize;
            let name = String::from_utf8(r.take(name_len, "name")?.to_vec())
                .map_err(|_| TensorError::Corrupt("non-utf8 tensor name".into()))?;
            let rank = r.u8("rank")? as usize;
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                dims.push(r.u32_le("dims")? as usize);
            }
            let dtype = if tagged {
                let tag = r.u8("dtype")?;
                DType::from_tag(tag).ok_or_else(|| {
                    TensorError::Corrupt(format!("tensor `{name}`: unknown dtype tag {tag}"))
                })?
            } else {
                DType::F32
            };
            let numel = r.u64_le("numel")? as usize;
            let expected: usize = dims.iter().product();
            if numel != expected {
                return Err(TensorError::Corrupt(format!(
                    "tensor `{name}`: numel {numel} != dims product {expected}"
                )));
            }
            if r.remaining() < numel * dtype.size_bytes() {
                return Err(TensorError::Corrupt(format!(
                    "tensor `{name}`: truncated data"
                )));
            }
            let bad_shape =
                |e: TensorError| TensorError::Corrupt(format!("bad tensor in checkpoint: {e}"));
            let entry = match dtype {
                DType::F32 => {
                    let raw = r.take(numel * 4, "tensor data")?;
                    let values: Vec<f32> = raw
                        .chunks_exact(4)
                        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    DynTensor::F32(Tensor::from_vec(values, &dims).map_err(bad_shape)?)
                }
                DType::F16 => {
                    let raw = r.take(numel * 2, "tensor data")?;
                    let values: Vec<F16> = raw
                        .chunks_exact(2)
                        .map(|c| F16::from_bits(u16::from_le_bytes(c.try_into().unwrap())))
                        .collect();
                    DynTensor::F16(Tensor::from_vec(values, &dims).map_err(bad_shape)?)
                }
                DType::I8 => {
                    let raw = r.take(numel, "tensor data")?;
                    let values: Vec<i8> = raw.iter().map(|&b| b as i8).collect();
                    DynTensor::I8(Tensor::from_vec(values, &dims).map_err(bad_shape)?)
                }
            };
            map.insert(name, entry);
        }
        Ok(map)
    }
}

/// An ordered, named collection of `f32` tensors (a checkpoint section).
///
/// This is the training-side view: inserts take `Tensor<f32>` and loads
/// require every entry to be f32 (version-1 checkpoints always are;
/// version-2 checkpoints holding f16/int8 entries belong to
/// [`DynTensorMap`] and are rejected here with a descriptive error).
/// `BTreeMap` keeps serialization deterministic, so identical states
/// produce byte-identical checkpoints (useful for tests and dedup).
#[derive(Default, Clone, Debug)]
pub struct TensorMap {
    entries: BTreeMap<String, Tensor>,
}

impl TensorMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a named tensor.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) {
        self.entries.insert(name.into(), t);
    }

    /// Look up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Look up a tensor, erroring with the missing name.
    pub fn require(&self, name: &str) -> Result<&Tensor, TensorError> {
        self.entries
            .get(name)
            .ok_or_else(|| TensorError::MissingTensor(name.to_string()))
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate name → tensor in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.entries.iter()
    }

    /// Names in order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Serialize to bytes (version-2 format, every entry tagged f32).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut dyn_map = DynTensorMap::new();
        for (name, t) in &self.entries {
            dyn_map.insert(name.clone(), DynTensor::F32(t.clone()));
        }
        dyn_map.to_bytes()
    }

    /// Deserialize from bytes (version 1 or 2), verifying magic and
    /// checksum. Every entry must be f32.
    pub fn from_bytes(data: &[u8]) -> Result<Self, TensorError> {
        let dyn_map = DynTensorMap::from_bytes(data)?;
        let mut map = TensorMap::new();
        for (name, entry) in dyn_map.iter() {
            match entry {
                DynTensor::F32(t) => map.insert(name.clone(), t.clone()),
                other => {
                    return Err(TensorError::Corrupt(format!(
                        "tensor `{name}` has dtype {} — load mixed-dtype checkpoints \
                         through DynTensorMap",
                        other.dtype()
                    )))
                }
            }
        }
        Ok(map)
    }

    /// Write to a file (atomically via a temp file + rename, so a crash
    /// mid-write never leaves a half-written checkpoint in place).
    pub fn save(&self, path: &Path) -> Result<(), TensorError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Self, TensorError> {
        let mut f = std::fs::File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Self::from_bytes(&buf)
    }
}

/// FNV-1a over a byte slice.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::Element;

    fn sample_map() -> TensorMap {
        let mut m = TensorMap::new();
        m.insert("w", Tensor::from_vec(vec![1.0, -2.5, 3.25], &[3]).unwrap());
        m.insert("b", Tensor::scalar(0.5));
        m.insert(
            "emb.table",
            Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]).unwrap(),
        );
        m
    }

    /// Hand-build a version-1 payload for the legacy read-path tests.
    fn v1_bytes(entries: &[(&str, &[usize], &[f32])]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (name, dims, values) in entries {
            buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
            buf.push(dims.len() as u8);
            for &d in *dims {
                buf.extend_from_slice(&(d as u32).to_le_bytes());
            }
            buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
            for v in *values {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    #[test]
    fn roundtrip_exact() {
        let m = sample_map();
        let bytes = m.to_bytes();
        let m2 = TensorMap::from_bytes(&bytes).unwrap();
        assert_eq!(m2.len(), 3);
        for (name, t) in m.iter() {
            assert_eq!(m2.get(name).unwrap(), t, "tensor `{name}` differs");
        }
    }

    #[test]
    fn deterministic_bytes() {
        assert_eq!(sample_map().to_bytes(), sample_map().to_bytes());
    }

    #[test]
    fn writes_v2_magic() {
        assert_eq!(&sample_map().to_bytes()[..8], MAGIC_V2);
    }

    #[test]
    fn legacy_v1_loads_as_f32() {
        let bytes = v1_bytes(&[
            ("bias", &[2], &[0.5, -1.5]),
            ("w", &[2, 2], &[1.0, 2.0, 3.0, 4.0]),
        ]);
        let m = TensorMap::from_bytes(&bytes).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("bias").unwrap().data(), &[0.5, -1.5]);
        assert_eq!(m.get("w").unwrap().dims(), &[2, 2]);
        // and through the dyn path the dtype is F32
        let d = DynTensorMap::from_bytes(&bytes).unwrap();
        assert_eq!(d.get("w").unwrap().dtype(), DType::F32);
    }

    #[test]
    fn dyn_roundtrip_all_three_dtypes() {
        let mut m = DynTensorMap::new();
        m.insert(
            "w.f32",
            DynTensor::F32(Tensor::from_vec(vec![1.0, -2.5, 3.25], &[3]).unwrap()),
        );
        m.insert(
            "kv.f16",
            DynTensor::F16(
                Tensor::from_vec(
                    vec![F16::from_f32(0.5), F16::from_f32(-7.0), F16::from_f32(0.099_976)],
                    &[3],
                )
                .unwrap(),
            ),
        );
        m.insert(
            "q.codes",
            DynTensor::I8(Tensor::from_vec(vec![-127i8, 0, 64, 127], &[2, 2]).unwrap()),
        );
        let bytes = m.to_bytes();
        let m2 = DynTensorMap::from_bytes(&bytes).unwrap();
        assert_eq!(m2.len(), 3);
        for (name, entry) in m.iter() {
            assert_eq!(m2.get(name).unwrap(), entry, "entry `{name}` differs");
        }
        // byte-exact storage: the f16 bits survive untouched
        match (m.get("kv.f16").unwrap(), m2.get("kv.f16").unwrap()) {
            (DynTensor::F16(a), DynTensor::F16(b)) => {
                let bits = |t: &Tensor<F16>| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(a), bits(b));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn f32_view_rejects_mixed_dtypes() {
        let mut m = DynTensorMap::new();
        m.insert(
            "q",
            DynTensor::I8(Tensor::from_vec(vec![1i8, 2], &[2]).unwrap()),
        );
        match TensorMap::from_bytes(&m.to_bytes()) {
            Err(TensorError::Corrupt(msg)) => {
                assert!(msg.contains("int8"), "unexpected message: {msg}")
            }
            other => panic!("expected dtype rejection, got {other:?}"),
        }
    }

    #[test]
    fn unknown_dtype_tag_rejected() {
        let mut m = DynTensorMap::new();
        m.insert(
            "w",
            DynTensor::F32(Tensor::from_vec(vec![1.0], &[1]).unwrap()),
        );
        let mut bytes = m.to_bytes();
        // entry layout: magic(8) count(4) name_len(2) name(1) rank(1)
        // dims(4) dtype(1) — flip the dtype byte to an unknown tag
        let dtype_off = 8 + 4 + 2 + 1 + 1 + 4;
        bytes[dtype_off] = 9;
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        match DynTensorMap::from_bytes(&bytes) {
            Err(TensorError::Corrupt(msg)) => assert!(msg.contains("dtype tag")),
            other => panic!("expected dtype-tag error, got {other:?}"),
        }
    }

    #[test]
    fn corruption_detected() {
        let bytes = sample_map().to_bytes();
        let mut bad = bytes.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        match TensorMap::from_bytes(&bad) {
            Err(TensorError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_map().to_bytes();
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                TensorMap::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let bytes = sample_map().to_bytes();
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        // fix checksum so only the magic is wrong
        let body_len = bad.len() - 8;
        let sum = fnv1a(&bad[..body_len]).to_le_bytes();
        bad[body_len..].copy_from_slice(&sum);
        match TensorMap::from_bytes(&bad) {
            Err(TensorError::Corrupt(msg)) => assert!(msg.contains("magic")),
            other => panic!("expected magic error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_atomic() {
        let dir = std::env::temp_dir().join(format!("rt-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let m = sample_map();
        m.save(&path).unwrap();
        let m2 = TensorMap::load(&path).unwrap();
        assert_eq!(m2.get("w").unwrap(), m.get("w").unwrap());
        assert!(!path.with_extension("tmp").exists(), "temp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn require_reports_missing_name() {
        let m = sample_map();
        match m.require("nope") {
            Err(TensorError::MissingTensor(n)) => assert_eq!(n, "nope"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_map_roundtrips() {
        let m = TensorMap::new();
        let m2 = TensorMap::from_bytes(&m.to_bytes()).unwrap();
        assert!(m2.is_empty());
    }
}

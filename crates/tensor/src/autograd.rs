//! Reverse-mode automatic differentiation.
//!
//! [`Var`] wraps a [`Tensor`] value in a dynamically-recorded computation
//! graph (define-by-run, like PyTorch). Each op node stores its parents and
//! a backward closure mapping the node's output gradient to per-parent
//! gradients; [`Var::backward`] walks the graph in reverse topological
//! order and accumulates gradients into every node that requires them.
//!
//! Graph nodes are reference-counted: dropping the loss after an optimizer
//! step frees the step's graph while leaf parameters (which hold no
//! parents) persist across steps.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::ops;
use crate::tensor::Tensor;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor>>;

pub(crate) struct VarInner {
    pub(crate) id: u64,
    pub(crate) value: Tensor,
    pub(crate) grad: Option<Tensor>,
    pub(crate) parents: Vec<Var>,
    pub(crate) backward: Option<BackwardFn>,
    pub(crate) requires_grad: bool,
}

/// A differentiable tensor: a node in the autograd graph.
///
/// Cloning a `Var` clones the node handle, not the data — clones share the
/// same value and gradient.
#[derive(Clone)]
pub struct Var(pub(crate) Rc<RefCell<VarInner>>);

impl Var {
    /// A leaf variable that accumulates gradients (a trainable parameter).
    pub fn leaf(value: Tensor) -> Var {
        Var(Rc::new(RefCell::new(VarInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            parents: Vec::new(),
            backward: None,
            requires_grad: true,
        })))
    }

    /// A constant: participates in forward computation but receives no
    /// gradient and records no graph through it.
    pub fn constant(value: Tensor) -> Var {
        Var(Rc::new(RefCell::new(VarInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            parents: Vec::new(),
            backward: None,
            requires_grad: false,
        })))
    }

    /// Build an op node. If no parent requires a gradient the node degrades
    /// to a constant (no graph recorded) — this makes pure inference cheap.
    pub(crate) fn from_op(value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Var {
        let needs = parents.iter().any(|p| p.0.borrow().requires_grad);
        if !needs {
            return Var::constant(value);
        }
        Var(Rc::new(RefCell::new(VarInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
            grad: None,
            parents,
            backward: Some(backward),
            requires_grad: true,
        })))
    }

    /// Unique node id (useful for debugging and graph inspection).
    pub fn id(&self) -> u64 {
        self.0.borrow().id
    }

    /// A snapshot of the current value (cheap: shared storage).
    pub fn value(&self) -> Tensor {
        self.0.borrow().value.clone()
    }

    /// Dimensions of the value.
    pub fn dims(&self) -> Vec<usize> {
        self.0.borrow().value.dims().to_vec()
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.0.borrow().grad.clone()
    }

    /// Whether this node participates in gradient computation.
    pub fn requires_grad(&self) -> bool {
        self.0.borrow().requires_grad
    }

    /// Clear the accumulated gradient (leaves the value untouched).
    pub fn zero_grad(&self) {
        self.0.borrow_mut().grad = None;
    }

    /// Replace the stored value. Used by optimizers; the graph (if any) is
    /// not invalidated because graphs are rebuilt every step.
    pub fn set_value(&self, value: Tensor) {
        self.0.borrow_mut().value = value;
    }

    /// A gradient-stopped copy of this node's value.
    pub fn detach(&self) -> Var {
        Var::constant(self.value())
    }

    /// Run reverse-mode autodiff from this (scalar) node, accumulating
    /// gradients into every reachable node with `requires_grad`.
    ///
    /// # Panics
    /// Panics if the value is not a single element.
    pub fn backward(&self) {
        let numel = self.0.borrow().value.numel();
        assert_eq!(numel, 1, "backward() requires a scalar output, got {numel} elements");
        self.backward_with(Tensor::scalar(1.0));
    }

    /// Reverse-mode autodiff seeded with an explicit output gradient
    /// (must match the value's shape).
    pub fn backward_with(&self, seed: Tensor) {
        {
            let inner = self.0.borrow();
            assert_eq!(
                inner.value.dims(),
                seed.dims(),
                "backward seed shape {:?} != value shape {:?}",
                seed.dims(),
                inner.value.dims()
            );
        }
        let order = self.topo_order();
        accumulate(self, &seed);
        // Walk in reverse topological order: every node sees its full
        // output gradient before propagating to parents.
        for node in order.iter().rev() {
            let (grad, parents) = {
                let inner = node.0.borrow();
                if inner.backward.is_none() || inner.grad.is_none() {
                    continue;
                }
                (inner.grad.clone().unwrap(), inner.parents.clone())
            };
            let parent_grads = {
                let inner = node.0.borrow();
                (inner.backward.as_ref().unwrap())(&grad)
            };
            assert_eq!(
                parent_grads.len(),
                parents.len(),
                "backward closure returned {} grads for {} parents",
                parent_grads.len(),
                parents.len()
            );
            for (p, g) in parents.iter().zip(parent_grads) {
                if p.0.borrow().requires_grad {
                    accumulate(p, &g);
                }
            }
        }
    }

    /// Nodes reachable from `self`, parents before children.
    fn topo_order(&self) -> Vec<Var> {
        let mut order = Vec::new();
        let mut visited = ratatouille_util::collections::det_set();
        // Iterative DFS (graphs from long sequence models can be deep
        // enough to overflow the stack with recursion).
        enum Frame {
            Enter(Var),
            Exit(Var),
        }
        let mut stack = vec![Frame::Enter(self.clone())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    let id = v.0.borrow().id;
                    if !visited.insert(id) {
                        continue;
                    }
                    stack.push(Frame::Exit(v.clone()));
                    for p in v.0.borrow().parents.iter() {
                        stack.push(Frame::Enter(p.clone()));
                    }
                }
                Frame::Exit(v) => order.push(v),
            }
        }
        order
    }

    /// Number of graph nodes reachable from this one (diagnostics).
    pub fn graph_size(&self) -> usize {
        self.topo_order().len()
    }
}

fn accumulate(v: &Var, g: &Tensor) {
    let mut inner = v.0.borrow_mut();
    assert_eq!(
        inner.value.dims(),
        g.dims(),
        "gradient shape {:?} != value shape {:?} (node {})",
        g.dims(),
        inner.value.dims(),
        inner.id
    );
    inner.grad = Some(match inner.grad.take() {
        Some(acc) => ops::add(&acc, g),
        None => g.clone(),
    });
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.0.borrow();
        write!(
            f,
            "Var(id={}, value={:?}, grad={}, parents={})",
            inner.id,
            inner.value,
            inner.grad.is_some(),
            inner.parents.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_holds_value_and_grad() {
        let v = Var::leaf(Tensor::scalar(3.0));
        assert_eq!(v.value().item(), 3.0);
        assert!(v.grad().is_none());
        assert!(v.requires_grad());
    }

    #[test]
    fn constant_records_no_graph() {
        let a = Var::constant(Tensor::scalar(2.0));
        let b = Var::constant(Tensor::scalar(3.0));
        let c = a.mul(&b);
        assert!(!c.requires_grad());
        assert_eq!(c.graph_size(), 1);
    }

    #[test]
    fn simple_chain_backward() {
        // y = (x * x) summed; dy/dx = 2x
        let x = Var::leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let y = x.mul(&x).sum();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let x = Var::leaf(Tensor::scalar(2.0));
        let y = x.mul(&x); // scalar
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 4.0);
        let y2 = x.mul(&x);
        y2.backward();
        assert_eq!(x.grad().unwrap().item(), 8.0);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn diamond_graph_sums_both_paths() {
        // y = x*x + x*x ; dy/dx = 4x
        let x = Var::leaf(Tensor::scalar(3.0));
        let a = x.mul(&x);
        let b = x.mul(&x);
        let y = a.add(&b);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 12.0);
    }

    #[test]
    fn shared_subexpression_visited_once() {
        // y = (x*x) used twice via the SAME node: z = x*x; y = z + z
        // dy/dx = 4x, and z's backward must run once with grad 2.
        let x = Var::leaf(Tensor::scalar(5.0));
        let z = x.mul(&x);
        let y = z.add(&z);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 20.0);
    }

    #[test]
    fn detach_stops_gradient() {
        let x = Var::leaf(Tensor::scalar(2.0));
        let d = x.detach();
        let y = d.mul(&d);
        y.backward();
        assert!(x.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "requires a scalar")]
    fn backward_on_non_scalar_panics() {
        let x = Var::leaf(Tensor::ones(&[2]));
        x.mul(&x).backward();
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        let x = Var::leaf(Tensor::scalar(1.0));
        let mut y = x.clone();
        for _ in 0..5000 {
            y = y.add_scalar(0.0);
        }
        let loss = y.sum();
        loss.backward();
        assert_eq!(x.grad().unwrap().item(), 1.0);
    }
}

//! Differentiable operations on [`Var`].
//!
//! Each op computes its forward value with the pure kernels in
//! [`crate::ops`] and registers a backward closure that maps the node's
//! output gradient to per-parent input gradients. The closures capture the
//! (immutable, cheaply-clonable) tensors they need.
//!
//! Every op here is validated against central finite differences in the
//! test module at the bottom of this file.

use crate::autograd::Var;
use crate::ops;
use crate::tensor::Tensor;

impl Var {
    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Elementwise addition (same shape).
    pub fn add(&self, other: &Var) -> Var {
        let out = ops::add(&self.value(), &other.value());
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(|g| {
            vec![g.clone(), g.clone()]
        }))
    }

    /// Elementwise subtraction (same shape).
    pub fn sub(&self, other: &Var) -> Var {
        let out = ops::sub(&self.value(), &other.value());
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(|g| {
            vec![g.clone(), ops::neg(g)]
        }))
    }

    /// Elementwise multiplication (same shape).
    pub fn mul(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let out = ops::mul(&a, &b);
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(move |g| {
            vec![ops::mul(g, &b), ops::mul(g, &a)]
        }))
    }

    /// Add a trailing-broadcast operand, e.g. `[B,T,D] + [D]` (bias).
    pub fn add_broadcast(&self, other: &Var) -> Var {
        let b_dims = other.dims();
        let out = ops::add_broadcast(&self.value(), &other.value());
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(move |g| {
            vec![g.clone(), ops::sum_to_trailing(g, &b_dims)]
        }))
    }

    /// Multiply by a trailing-broadcast operand.
    pub fn mul_broadcast(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let b_dims = other.dims();
        let out = ops::mul_broadcast(&a, &b);
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(move |g| {
            let da = ops::mul_broadcast(g, &b);
            let db = ops::sum_to_trailing(&ops::mul(g, &a), &b_dims);
            vec![da, db]
        }))
    }

    /// Multiply by a scalar.
    pub fn scale(&self, s: f32) -> Var {
        let out = ops::scale(&self.value(), s);
        Var::from_op(out, vec![self.clone()], Box::new(move |g| vec![ops::scale(g, s)]))
    }

    /// Add a scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        let out = ops::add_scalar(&self.value(), s);
        Var::from_op(out, vec![self.clone()], Box::new(|g| vec![g.clone()]))
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    // ------------------------------------------------------------------
    // Matrix products
    // ------------------------------------------------------------------

    /// 2-D matrix multiply: `[M,K] @ [K,N]` → `[M,N]`.
    pub fn matmul(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let out = ops::matmul(&a, &b);
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(move |g| {
            vec![ops::matmul_transb(g, &b), ops::matmul_transa(&a, g)]
        }))
    }

    /// 2-D `A @ Bᵀ`: `[M,K] @ [N,K]` → `[M,N]`.
    ///
    /// Used for weight-tied language-model heads (`logits = x @ Eᵀ`).
    pub fn matmul_transb(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let out = ops::matmul_transb(&a, &b);
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(move |g| {
            // dA = dC @ B ; dB[n,k] = Σ_m dC[m,n]·A[m,k] = dCᵀ @ A
            vec![ops::matmul(g, &b), ops::matmul_transa(g, &a)]
        }))
    }

    /// Batched matrix multiply: `[B,M,K] @ [B,K,N]` → `[B,M,N]`.
    pub fn bmm(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let out = ops::bmm(&a, &b);
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(move |g| {
            vec![ops::bmm_transb(g, &b), ops::bmm_transa(&a, g)]
        }))
    }

    /// Batched `A @ Bᵀ`: `[B,M,K] @ [B,N,K]` → `[B,M,N]`.
    ///
    /// The attention-scores product (`Q @ Kᵀ`).
    pub fn bmm_transb(&self, other: &Var) -> Var {
        let (a, b) = (self.value(), other.value());
        let out = ops::bmm_transb(&a, &b);
        Var::from_op(out, vec![self.clone(), other.clone()], Box::new(move |g| {
            // dA = dC @ B ; dB[n,k] = sum_m dC[m,n] A[m,k]
            vec![ops::bmm(g, &b), ops::bmm_transa(g, &a)]
        }))
    }

    // ------------------------------------------------------------------
    // Activations & pointwise nonlinearities
    // ------------------------------------------------------------------

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let out = ops::tanh(&self.value());
        let saved = out.clone();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::zip(g, &saved, |gv, t| gv * (1.0 - t * t))]
        }))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = ops::sigmoid(&self.value());
        let saved = out.clone();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::zip(g, &saved, |gv, s| gv * s * (1.0 - s))]
        }))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let x = self.value();
        let out = ops::relu(&x);
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::zip(g, &x, |gv, xv| if xv > 0.0 { gv } else { 0.0 })]
        }))
    }

    /// GPT-2's tanh-approximate GELU.
    pub fn gelu(&self) -> Var {
        let x = self.value();
        let out = ops::gelu(&x);
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::zip(g, &x, |gv, xv| gv * ops::gelu_grad_scalar(xv))]
        }))
    }

    /// Natural exponential.
    pub fn exp(&self) -> Var {
        let out = ops::exp(&self.value());
        let saved = out.clone();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::mul(g, &saved)]
        }))
    }

    /// Natural logarithm.
    pub fn ln(&self) -> Var {
        let x = self.value();
        let out = ops::ln(&x);
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::zip(g, &x, |gv, xv| gv / xv)]
        }))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Var {
        let dims = self.dims();
        let out = ops::sum_all(&self.value());
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![Tensor::full(&dims, g.item())]
        }))
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Var {
        let dims = self.dims();
        let n: usize = dims.iter().product::<usize>().max(1);
        let out = ops::mean_all(&self.value());
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![Tensor::full(&dims, g.item() / n as f32)]
        }))
    }

    // ------------------------------------------------------------------
    // Softmax family
    // ------------------------------------------------------------------

    /// Softmax over the last axis.
    pub fn softmax_last(&self) -> Var {
        let p = ops::softmax_last(&self.value());
        let saved = p.clone();
        Var::from_op(p, vec![self.clone()], Box::new(move |g| {
            vec![softmax_backward(g, &saved)]
        }))
    }

    /// Causally-masked softmax over trailing `[T,T]` score matrices
    /// (attention weights for autoregressive decoding).
    pub fn causal_masked_softmax(&self) -> Var {
        let p = ops::causal_masked_softmax(&self.value());
        let saved = p.clone();
        Var::from_op(p, vec![self.clone()], Box::new(move |g| {
            // Masked entries have p = 0, so the shared formula yields
            // exactly 0 gradient there — no separate mask needed.
            vec![softmax_backward(g, &saved)]
        }))
    }

    // ------------------------------------------------------------------
    // Normalization
    // ------------------------------------------------------------------

    /// Layer normalization over the last axis with affine `gamma`/`beta`.
    pub fn layer_norm(&self, gamma: &Var, beta: &Var, eps: f32) -> Var {
        let x = self.value();
        let g = gamma.value();
        let (out, mean, rstd) = ops::layer_norm(&x, &g, &beta.value(), eps);
        let d = *x.dims().last().unwrap();
        Var::from_op(
            out,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |dy| {
                let rows = x.numel() / d;
                let (xd, gd, md, rd, dyd) = (x.data(), g.data(), mean.data(), rstd.data(), dy.data());
                let mut dx = vec![0.0f32; x.numel()];
                let mut dgamma = vec![0.0f32; d];
                let mut dbeta = vec![0.0f32; d];
                for r in 0..rows {
                    let (mu, rs) = (md[r], rd[r]);
                    let xrow = &xd[r * d..(r + 1) * d];
                    let dyrow = &dyd[r * d..(r + 1) * d];
                    // x̂ and the two row means needed by the dx formula
                    let mut mean_dxhat = 0.0f32;
                    let mut mean_dxhat_xhat = 0.0f32;
                    for j in 0..d {
                        let xhat = (xrow[j] - mu) * rs;
                        let dxhat = dyrow[j] * gd[j];
                        mean_dxhat += dxhat; // xlint: allow(accum-discipline): fused single-pass row stats, sequential j order
                        mean_dxhat_xhat += dxhat * xhat; // xlint: allow(accum-discipline): same fused pass
                        dgamma[j] += dyrow[j] * xhat; // xlint: allow(accum-discipline): this and dbeta below are per-column scatters, one term per row
                        dbeta[j] += dyrow[j];
                    }
                    mean_dxhat /= d as f32;
                    mean_dxhat_xhat /= d as f32;
                    for j in 0..d {
                        let xhat = (xrow[j] - mu) * rs;
                        let dxhat = dyrow[j] * gd[j];
                        dx[r * d + j] = rs * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat);
                    }
                }
                vec![
                    Tensor::from_vec(dx, x.dims()).unwrap(),
                    Tensor::from_vec(dgamma, &[d]).unwrap(),
                    Tensor::from_vec(dbeta, &[d]).unwrap(),
                ]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Embedding & loss
    // ------------------------------------------------------------------

    /// Embedding lookup: `self` is the `[V,D]` table; gathers `ids` → `[N,D]`.
    pub fn embedding(&self, ids: &[usize]) -> Var {
        let table = self.value();
        let (v, d) = (table.dims()[0], table.dims()[1]);
        let out = ops::embedding(&table, ids);
        let ids: Vec<usize> = ids.to_vec();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            let mut dt = vec![0.0f32; v * d];
            for (row, &id) in ids.iter().enumerate() {
                let src = &g.data()[row * d..(row + 1) * d];
                let dst = &mut dt[id * d..(id + 1) * d];
                for (o, &s) in dst.iter_mut().zip(src) {
                    *o += s;
                }
            }
            vec![Tensor::from_vec(dt, &[v, d]).unwrap()]
        }))
    }

    /// Mean token-level cross-entropy of `self` (logits `[N,V]`) against
    /// integer targets; rows whose target equals `ignore_index` are skipped.
    /// Returns a scalar loss node.
    pub fn cross_entropy(&self, targets: &[usize], ignore_index: usize) -> Var {
        let logits = self.value();
        let (n, v) = (logits.dims()[0], logits.dims()[1]);
        let (loss, probs) = ops::cross_entropy(&logits, targets, ignore_index);
        let targets: Vec<usize> = targets.to_vec();
        let kept = targets.iter().filter(|&&t| t != ignore_index).count().max(1);
        Var::from_op(
            Tensor::scalar(loss),
            vec![self.clone()],
            Box::new(move |g| {
                let scale = g.item() / kept as f32;
                let mut dl = probs.to_vec();
                for (r, &t) in targets.iter().enumerate() {
                    let row = &mut dl[r * v..(r + 1) * v];
                    if t == ignore_index {
                        row.fill(0.0);
                    } else {
                        row[t] -= 1.0;
                        for x in row.iter_mut() {
                            *x *= scale;
                        }
                    }
                }
                vec![Tensor::from_vec(dl, &[n, v]).unwrap()]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reshape (element count preserved; zero-copy forward).
    pub fn reshape(&self, dims: &[usize]) -> Var {
        let in_dims = self.dims();
        let out = self.value().reshape(dims);
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![g.reshape(&in_dims)]
        }))
    }

    /// Permute axes.
    pub fn permute(&self, axes: &[usize]) -> Var {
        let out = ops::permute(&self.value(), axes);
        // Inverse permutation for the backward pass.
        let mut inv = vec![0usize; axes.len()];
        for (i, &a) in axes.iter().enumerate() {
            inv[a] = i;
        }
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::permute(g, &inv)]
        }))
    }

    /// Slice `len` elements from `start` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Var {
        let full_dims = self.dims();
        let out = ops::narrow(&self.value(), axis, start, len);
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::pad_narrow_grad(g, &full_dims, axis, start)]
        }))
    }

    /// Concatenate along `axis`.
    pub fn concat(parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "Var::concat: empty input");
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let out = ops::concat(&refs, axis);
        let sizes: Vec<usize> = values.iter().map(|v| v.dims()[axis]).collect();
        Var::from_op(out, parts.to_vec(), Box::new(move |g| {
            let mut grads = Vec::with_capacity(sizes.len());
            let mut off = 0;
            for &s in &sizes {
                grads.push(ops::narrow(g, axis, off, s));
                off += s;
            }
            grads
        }))
    }

    /// Inverted dropout with keep-probability `1 - p`; identity when
    /// `p == 0`. The mask is drawn from `rng` so training is reproducible.
    pub fn dropout(&self, p: f32, rng: &mut impl ratatouille_util::rng::RngExt) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        if p == 0.0 {
            return self.clone();
        }
        let keep = 1.0 - p;
        let x = self.value();
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| if rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask, x.dims()).unwrap();
        let out = ops::mul(&x, &mask);
        let saved = mask.clone();
        Var::from_op(out, vec![self.clone()], Box::new(move |g| {
            vec![ops::mul(g, &saved)]
        }))
    }
}

/// Shared softmax Jacobian-vector product:
/// `dx = p ⊙ (dy − rowsum(dy ⊙ p))` over the last axis.
fn softmax_backward(dy: &Tensor, p: &Tensor) -> Tensor {
    let d = *p.dims().last().unwrap();
    let rows = p.numel() / d;
    let mut dx = vec![0.0f32; p.numel()];
    let (pd, dyd) = (p.data(), dy.data());
    for r in 0..rows {
        let prow = &pd[r * d..(r + 1) * d];
        let dyrow = &dyd[r * d..(r + 1) * d];
        let dot = ratatouille_util::accum::sum_f32(prow.iter().zip(dyrow).map(|(&a, &b)| a * b));
        for j in 0..d {
            dx[r * d + j] = prow[j] * (dyrow[j] - dot);
        }
    }
    Tensor::from_vec(dx, p.dims()).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratatouille_util::rng::StdRng;
    use ratatouille_util::rng::{RngExt, SeedableRng};

    /// Central finite-difference check: builds the graph with `f`, runs
    /// backward, and compares each input's gradient against a numeric
    /// estimate obtained by perturbing one element at a time.
    fn grad_check(inputs: &[(&str, Vec<f32>, Vec<usize>)], f: impl Fn(&[Var]) -> Var, tol: f32) {
        let vars: Vec<Var> = inputs
            .iter()
            .map(|(_, data, dims)| Var::leaf(Tensor::from_vec(data.clone(), dims).unwrap()))
            .collect();
        let loss = f(&vars);
        loss.backward();
        let h = 1e-2f32;
        for (vi, (name, data, dims)) in inputs.iter().enumerate() {
            let analytic = vars[vi]
                .grad()
                .unwrap_or_else(|| panic!("no grad for input `{name}`"));
            for ei in 0..data.len() {
                let mut plus = data.clone();
                plus[ei] += h;
                let mut minus = data.clone();
                minus[ei] -= h;
                let eval = |d: Vec<f32>| {
                    let vs: Vec<Var> = inputs
                        .iter()
                        .enumerate()
                        .map(|(j, (_, dd, ds))| {
                            let use_d = if j == vi { d.clone() } else { dd.clone() };
                            Var::leaf(Tensor::from_vec(use_d, ds).unwrap())
                        })
                        .collect();
                    f(&vs).value().item()
                };
                let fd = (eval(plus) - eval(minus)) / (2.0 * h);
                let an = analytic.data()[ei];
                assert!(
                    (fd - an).abs() <= tol * (1.0 + fd.abs().max(an.abs())),
                    "grad mismatch `{name}`[{ei}] (dims {dims:?}): fd={fd:.5} analytic={an:.5}"
                );
            }
        }
    }

    fn rng_data(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect()
    }

    #[test]
    fn grad_add_sub_mul() {
        grad_check(
            &[
                ("a", rng_data(6, 1), vec![2, 3]),
                ("b", rng_data(6, 2), vec![2, 3]),
            ],
            |v| v[0].mul(&v[1]).add(&v[0]).sub(&v[1]).sum(),
            1e-2,
        );
    }

    #[test]
    fn grad_broadcast_ops() {
        grad_check(
            &[
                ("x", rng_data(12, 3), vec![2, 2, 3]),
                ("bias", rng_data(3, 4), vec![3]),
                ("scale", rng_data(3, 5), vec![3]),
            ],
            |v| v[0].add_broadcast(&v[1]).mul_broadcast(&v[2]).sum(),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul() {
        grad_check(
            &[
                ("a", rng_data(6, 6), vec![2, 3]),
                ("b", rng_data(12, 7), vec![3, 4]),
            ],
            |v| v[0].matmul(&v[1]).sum(),
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_transb_2d() {
        grad_check(
            &[
                ("x", rng_data(6, 61), vec![2, 3]),
                ("e", rng_data(12, 62), vec![4, 3]),
            ],
            |v| v[0].matmul_transb(&v[1]).sum(),
            1e-2,
        );
    }

    #[test]
    fn grad_bmm() {
        grad_check(
            &[
                ("a", rng_data(12, 8), vec![2, 2, 3]),
                ("b", rng_data(12, 9), vec![2, 3, 2]),
            ],
            |v| v[0].bmm(&v[1]).sum(),
            1e-2,
        );
    }

    #[test]
    fn grad_bmm_transb() {
        grad_check(
            &[
                ("q", rng_data(12, 10), vec![2, 2, 3]),
                ("k", rng_data(12, 11), vec![2, 2, 3]),
            ],
            |v| v[0].bmm_transb(&v[1]).sum(),
            1e-2,
        );
    }

    #[test]
    fn grad_activations() {
        for op in ["tanh", "sigmoid", "gelu", "exp"] {
            grad_check(
                &[("x", rng_data(6, 12), vec![6])],
                |v| {
                    let y = match op {
                        "tanh" => v[0].tanh(),
                        "sigmoid" => v[0].sigmoid(),
                        "gelu" => v[0].gelu(),
                        "exp" => v[0].exp(),
                        _ => unreachable!(),
                    };
                    y.sum()
                },
                2e-2,
            );
        }
    }

    #[test]
    fn grad_ln() {
        // keep inputs positive and away from zero
        let data: Vec<f32> = rng_data(5, 13).iter().map(|v| v.abs() + 0.5).collect();
        grad_check(&[("x", data, vec![5])], |v| v[0].ln().sum(), 2e-2);
    }

    #[test]
    fn grad_mean() {
        grad_check(&[("x", rng_data(8, 14), vec![2, 4])], |v| v[0].mean(), 1e-2);
    }

    #[test]
    fn grad_softmax_weighted() {
        // weight the softmax output so the gradient is non-trivial
        let w = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]).unwrap();
        grad_check(
            &[("x", rng_data(8, 15), vec![2, 4])],
            move |v| {
                let p = v[0].softmax_last();
                p.mul_broadcast(&Var::constant(w.clone())).sum()
            },
            2e-2,
        );
    }

    #[test]
    fn grad_causal_softmax() {
        let w = Tensor::from_vec(rng_data(9, 99), &[1, 3, 3]).unwrap();
        grad_check(
            &[("x", rng_data(9, 16), vec![1, 3, 3])],
            move |v| {
                let p = v[0].causal_masked_softmax();
                p.mul(&Var::constant(w.clone())).sum()
            },
            2e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        let w = Tensor::from_vec(rng_data(8, 98), &[2, 4]).unwrap();
        grad_check(
            &[
                ("x", rng_data(8, 17), vec![2, 4]),
                ("gamma", rng_data(4, 18).iter().map(|v| v + 1.5).collect(), vec![4]),
                ("beta", rng_data(4, 19), vec![4]),
            ],
            move |v| {
                v[0].layer_norm(&v[1], &v[2], 1e-5)
                    .mul(&Var::constant(w.clone()))
                    .sum()
            },
            5e-2,
        );
    }

    #[test]
    fn grad_embedding() {
        grad_check(
            &[("table", rng_data(8, 20), vec![4, 2])],
            |v| v[0].embedding(&[1, 3, 1]).sum(),
            1e-2,
        );
        // repeated ids must accumulate: rows 1 gathered twice → grad 2
        let table = Var::leaf(Tensor::zeros(&[4, 2]));
        table.embedding(&[1, 1]).sum().backward();
        let g = table.grad().unwrap();
        assert_eq!(g.at(&[1, 0]), 2.0);
        assert_eq!(g.at(&[0, 0]), 0.0);
    }

    #[test]
    fn grad_cross_entropy() {
        grad_check(
            &[("logits", rng_data(12, 21), vec![3, 4])],
            |v| v[0].cross_entropy(&[0, 2, 3], usize::MAX),
            2e-2,
        );
    }

    #[test]
    fn grad_cross_entropy_with_padding() {
        let pad = 999usize;
        grad_check(
            &[("logits", rng_data(12, 22), vec![3, 4])],
            move |v| v[0].cross_entropy(&[1, pad, 2], pad),
            2e-2,
        );
        // padded rows contribute exactly zero gradient
        let l = Var::leaf(Tensor::from_vec(rng_data(8, 23), &[2, 4]).unwrap());
        l.cross_entropy(&[pad, 1], pad).backward();
        let g = l.grad().unwrap();
        assert!(g.data()[..4].iter().all(|&v| v == 0.0));
        assert!(g.data()[4..].iter().any(|&v| v != 0.0));
    }

    #[test]
    fn grad_reshape_permute() {
        let w = Tensor::from_vec(rng_data(6, 97), &[3, 2]).unwrap();
        grad_check(
            &[("x", rng_data(6, 24), vec![2, 3])],
            move |v| {
                v[0].permute(&[1, 0])
                    .mul(&Var::constant(w.clone()))
                    .reshape(&[6])
                    .sum()
            },
            1e-2,
        );
    }

    #[test]
    fn grad_narrow_concat() {
        grad_check(
            &[
                ("a", rng_data(6, 25), vec![2, 3]),
                ("b", rng_data(4, 26), vec![2, 2]),
            ],
            |v| {
                let c = Var::concat(&[v[0].clone(), v[1].clone()], 1); // [2,5]
                c.narrow(1, 1, 3).mul(&c.narrow(1, 2, 3)).sum()
            },
            2e-2,
        );
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Var::leaf(Tensor::ones(&[4]));
        let y = x.dropout(0.0, &mut rng);
        assert_eq!(y.value().data(), &[1.0; 4]);
    }

    #[test]
    fn dropout_preserves_expectation_and_masks_grad() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Var::leaf(Tensor::ones(&[10_000]));
        let y = x.dropout(0.5, &mut rng);
        let mean = y.value().data().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
        y.sum().backward();
        let g = x.grad().unwrap();
        // gradient is 2.0 where kept, 0.0 where dropped
        assert!(g.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn lstm_like_composite_grad() {
        // One LSTM-ish gate computation: c' = f⊙c + i⊙g with gates from a
        // joint affine projection, checking composed slicing + activations.
        grad_check(
            &[
                ("x", rng_data(4, 30), vec![1, 4]),
                ("w", rng_data(32, 31), vec![4, 8]),
                ("c", rng_data(2, 32), vec![1, 2]),
            ],
            |v| {
                let z = v[0].matmul(&v[1]); // [1,8]
                let i = z.narrow(1, 0, 2).sigmoid();
                let f = z.narrow(1, 2, 2).sigmoid();
                let g = z.narrow(1, 4, 2).tanh();
                let o = z.narrow(1, 6, 2).sigmoid();
                let c2 = f.mul(&v[2]).add(&i.mul(&g));
                o.mul(&c2.tanh()).sum()
            },
            3e-2,
        );
    }
}

//! Property tests for the persistent worker pool and the blocked matmul
//! family: for any shape and any thread count, pooled kernels must be
//! **bit-for-bit** identical to the single-threaded result, and the pool
//! must survive nested and repeated launches without deadlocking.
//!
//! These pin the determinism contract the golden tests in
//! `tests/determinism.rs` rely on: `set_num_threads` is a performance
//! knob, never a numerics knob.

use ratatouille_util::proptest::prelude::*;
use ratatouille_tensor::{ops, par, Tensor};
use std::sync::{Mutex, MutexGuard};

/// `par::set_num_threads` is process-global and the test harness runs
/// tests concurrently, so every property that sweeps the knob serializes
/// on this lock (recovering it if a failing case poisoned it).
static THREAD_KNOB: Mutex<()> = Mutex::new(());

fn knob() -> MutexGuard<'static, ()> {
    THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

const SWEEP: [usize; 4] = [2, 3, 4, 7];

fn assert_bits_equal(serial: &Tensor, parallel: &Tensor, what: &str, threads: usize) {
    assert_eq!(serial.dims(), parallel.dims());
    for (i, (a, b)) in serial.data().iter().zip(parallel.data()).enumerate() {
        assert!(
            a.to_bits() == b.to_bits(),
            "{what}: bit mismatch at {i} with {threads} threads: {a} vs {b}"
        );
    }
}

/// Random rank-2 operand pair for `A[m,k] @ B[k,n]`, spanning the
/// unpacked small-m path, the packed/blocked path, and row counts that
/// split unevenly across 2/3/4/7 workers.
fn mm_operands() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..40, 1usize..48, 1usize..40).prop_flat_map(|(m, k, n)| {
        (
            collection::vec(-4.0f32..4.0, m * k..=m * k),
            collection::vec(-4.0f32..4.0, k * n..=k * n),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(a, &[m, k]).unwrap(),
                    Tensor::from_vec(b, &[k, n]).unwrap(),
                )
            })
    })
}

/// Random batched operands for the `bmm_*` family (shared inner dims).
fn bmm_operands() -> impl Strategy<Value = (usize, usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (1usize..5, 1usize..12, 1usize..10, 1usize..12).prop_flat_map(|(b, m, k, n)| {
        (
            collection::vec(-3.0f32..3.0, b * m * k..=b * m * k),
            collection::vec(-3.0f32..3.0, b * k * n..=b * k * n),
        )
            .prop_map(move |(av, bv)| (b, m, k, n, av, bv))
    })
}

proptest! {
    cases = 48;

    /// `matmul` is bit-identical for thread counts {2, 3, 4, 7} vs 1.
    #[test]
    fn matmul_bits_invariant_across_thread_counts((a, b) in mm_operands()) {
        let _g = knob();
        par::set_num_threads(1);
        let serial = ops::matmul(&a, &b);
        for &t in &SWEEP {
            par::set_num_threads(t);
            let parallel = ops::matmul(&a, &b);
            assert_bits_equal(&serial, &parallel, "matmul", t);
        }
        par::set_num_threads(0);
    }

    /// `matmul_transb` (including the m == 1 column-parallel decode path)
    /// is bit-identical across thread counts.
    #[test]
    fn matmul_transb_bits_invariant((a, b) in mm_operands()) {
        // reinterpret: a [m,k] @ (b' [n,k])ᵀ where b' is b reshaped
        let (k, n) = (b.dims()[0], b.dims()[1]);
        let bt = b.reshape(&[n, k]);
        let _g = knob();
        par::set_num_threads(1);
        let serial = ops::matmul_transb(&a, &bt);
        for &t in &SWEEP {
            par::set_num_threads(t);
            let parallel = ops::matmul_transb(&a, &bt);
            assert_bits_equal(&serial, &parallel, "matmul_transb", t);
        }
        par::set_num_threads(0);
    }

    /// `matmul_transa` is bit-identical across thread counts.
    #[test]
    fn matmul_transa_bits_invariant((a, b) in mm_operands()) {
        // reinterpret: (a' [k,m])ᵀ @ b [k,n] where a' is a reshaped
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let at = a.reshape(&[k, m]);
        let _g = knob();
        par::set_num_threads(1);
        let serial = ops::matmul_transa(&at, &b);
        for &t in &SWEEP {
            par::set_num_threads(t);
            let parallel = ops::matmul_transa(&at, &b);
            assert_bits_equal(&serial, &parallel, "matmul_transa", t);
        }
        par::set_num_threads(0);
    }

    /// The three bmm variants are bit-identical across thread counts.
    #[test]
    fn bmm_family_bits_invariant((bt, m, k, n, av, bv) in bmm_operands()) {
        let a = Tensor::from_vec(av.clone(), &[bt, m, k]).unwrap();
        let b = Tensor::from_vec(bv.clone(), &[bt, k, n]).unwrap();
        let a_t = Tensor::from_vec(av, &[bt, k, m]).unwrap(); // for bmm_transa
        let b_t = Tensor::from_vec(bv, &[bt, n, k]).unwrap(); // for bmm_transb
        let _g = knob();
        par::set_num_threads(1);
        let s_plain = ops::bmm(&a, &b);
        let s_tb = ops::bmm_transb(&a, &b_t);
        let s_ta = ops::bmm_transa(&a_t, &b);
        for &t in &SWEEP {
            par::set_num_threads(t);
            assert_bits_equal(&s_plain, &ops::bmm(&a, &b), "bmm", t);
            assert_bits_equal(&s_tb, &ops::bmm_transb(&a, &b_t), "bmm_transb", t);
            assert_bits_equal(&s_ta, &ops::bmm_transa(&a_t, &b), "bmm_transa", t);
        }
        par::set_num_threads(0);
    }

    /// Repeated pool launches with varying lengths cover every index
    /// exactly once, at any thread count (pool reuse is leak/deadlock free).
    #[test]
    fn repeated_pool_launches_cover_exactly_once(len in 1usize..600, threads in 1usize..8) {
        let _g = knob();
        par::set_num_threads(threads);
        for _ in 0..4 {
            let hits = Mutex::new(vec![0u8; len]);
            par::parallel_chunks(len, 1, |s, e, _| {
                let mut h = hits.lock().unwrap();
                for i in s..e {
                    h[i] += 1;
                }
            });
            assert!(hits.into_inner().unwrap().iter().all(|&c| c == 1));
        }
        par::set_num_threads(0);
    }

    /// Nested launches (a parallel kernel called from inside a pool task)
    /// complete without deadlock and still cover every index once.
    #[test]
    fn nested_pool_launches_terminate(len in 2usize..300, threads in 2usize..8) {
        let _g = knob();
        par::set_num_threads(threads);
        let hits = Mutex::new(vec![0u8; len]);
        par::parallel_chunks(len, 1, |s, e, _| {
            par::parallel_chunks(e - s, 1, |ns, ne, _| {
                let mut h = hits.lock().unwrap();
                for i in s + ns..s + ne {
                    h[i] += 1;
                }
            });
        });
        assert!(hits.into_inner().unwrap().iter().all(|&c| c == 1));
        par::set_num_threads(0);
    }
}

/// A deep nested-launch chain (pool inside pool inside pool) and a
/// matmul launched from inside a pool task: the inline-when-nested rule
/// means neither can exhaust or deadlock the pool.
#[test]
fn deeply_nested_launches_and_kernels_survive() {
    let _g = knob();
    par::set_num_threads(4);
    let a = Tensor::from_vec((0..32 * 24).map(|i| (i % 11) as f32 * 0.3).collect(), &[32, 24])
        .unwrap();
    let b = Tensor::from_vec((0..24 * 20).map(|i| (i % 7) as f32 * 0.5).collect(), &[24, 20])
        .unwrap();
    par::set_num_threads(1);
    let expect = ops::matmul(&a, &b);
    par::set_num_threads(4);
    let done = Mutex::new(0usize);
    par::parallel_chunks(8, 1, |s, e, _| {
        for _ in s..e {
            // kernel launch from inside a pool task runs inline
            let c = ops::matmul(&a, &b);
            assert_bits_equal(&expect, &c, "nested matmul", 4);
            par::parallel_chunks(16, 1, |ns, ne, _| {
                par::parallel_chunks(ne - ns, 1, |_, _, _| {});
            });
            *done.lock().unwrap() += 1;
        }
    });
    assert_eq!(*done.lock().unwrap(), 8);
    par::set_num_threads(0);
}

//! Batch-invariance of the GEMM kernels: row `i` of `matmul(A, B)` must
//! be **bitwise** identical no matter how many other rows ride along in
//! `A`. This is the kernel-level foundation of the serving layer's
//! batch-determinism contract (see `ratatouille_models::batch`): a
//! request decoding in a batch of 7 reuses the exact accumulation chain
//! it would get solo.
//!
//! The invariant holds whenever `N % 16 == 0` (the packed microkernel's
//! `NR` tile width): then every output element's dot product runs the
//! same split-free loop in both the unpacked small-`m` path (`m < 8`)
//! and the packed path. `matmul_transb` computes independent
//! per-element dots, so it is invariant for any `N`. These tests pin
//! both facts across the `m = 8` path switch, deterministically.

use ratatouille_tensor::{ops, Tensor};

/// Deterministic pseudo-random data (no RNG dependency, no seeds to
/// drift): a fixed-point sine sweep with enough dynamic range to expose
/// any reassociation in f32.
fn fill(n: usize, phase: f32) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as f32 * 0.7310 + phase).sin() * 3.25) + (i % 7) as f32 * 0.125)
        .collect()
}

fn rows(t: &Tensor, n_cols: usize) -> Vec<&[f32]> {
    t.data().chunks(n_cols).collect()
}

/// For every batch size `m` crossing the packed/unpacked switch at 8,
/// row 0 of the product must equal the 1-row product bit for bit.
#[test]
fn matmul_row_is_independent_of_batch_size() {
    // Shapes mirror the models: N is the GEMM output width, and every
    // model width the batched path serves is a multiple of NR = 16.
    for (k, n) in [(16, 16), (24, 32), (64, 48)] {
        let b = Tensor::from_vec(fill(k * n, 0.3), &[k, n]).unwrap();
        let first = Tensor::from_vec(fill(k, 1.7), &[1, k]).unwrap();
        let solo = ops::matmul(&first, &b);
        for m in 2..=10usize {
            let mut data = fill(k, 1.7); // row 0 identical to `first`
            data.extend(fill(k * (m - 1), 9.1));
            let a = Tensor::from_vec(data, &[m, k]).unwrap();
            let full = ops::matmul(&a, &b);
            assert_eq!(
                rows(&full, n)[0].to_vec(),
                solo.data().to_vec(),
                "row 0 differs between m=1 and m={m} for k={k}, n={n} \
                 (bitwise; batch invariance broken)"
            );
        }
    }
}

/// Every row of a batched product equals that row computed solo — not
/// just row 0 (position in the batch must not matter either).
#[test]
fn matmul_every_row_matches_its_solo_product() {
    let (m, k, n) = (10usize, 32usize, 64usize);
    let b = Tensor::from_vec(fill(k * n, 0.11), &[k, n]).unwrap();
    let a = Tensor::from_vec(fill(m * k, 5.3), &[m, k]).unwrap();
    let full = ops::matmul(&a, &b);
    for i in 0..m {
        let row = a.data()[i * k..(i + 1) * k].to_vec();
        let solo = ops::matmul(&Tensor::from_vec(row, &[1, k]).unwrap(), &b);
        assert_eq!(
            rows(&full, n)[i].to_vec(),
            solo.data().to_vec(),
            "row {i} not bitwise-identical to its solo product"
        );
    }
}

/// `matmul_transb` (the LM head: logits = hidden · Wteᵀ) is per-output
/// independent dots, so invariance holds for ANY n — including the odd
/// vocab sizes tokenizers produce.
#[test]
fn matmul_transb_rows_are_batch_invariant() {
    for n in [10usize, 16, 37, 100] {
        let k = 48usize;
        let bt = Tensor::from_vec(fill(n * k, 2.2), &[n, k]).unwrap();
        let first = Tensor::from_vec(fill(k, 0.77), &[1, k]).unwrap();
        let solo = ops::matmul_transb(&first, &bt);
        for m in [2usize, 7, 9] {
            let mut data = fill(k, 0.77);
            data.extend(fill(k * (m - 1), 4.9));
            let a = Tensor::from_vec(data, &[m, k]).unwrap();
            let full = ops::matmul_transb(&a, &bt);
            assert_eq!(
                rows(&full, n)[0].to_vec(),
                solo.data().to_vec(),
                "transb row 0 differs between m=1 and m={m} for n={n}"
            );
        }
    }
}

/// Row-wise elementwise ops preserve per-row bits regardless of how
/// many rows share the tensor — the rest of the batched forward pass.
#[test]
fn rowwise_ops_are_batch_invariant() {
    let d = 64usize;
    let solo_in = Tensor::from_vec(fill(d, 3.3), &[1, d]).unwrap();
    let gamma = Tensor::from_vec(fill(d, 0.5), &[d]).unwrap();
    let beta = Tensor::from_vec(fill(d, 1.5), &[d]).unwrap();
    let (solo_ln, _, _) = ops::layer_norm(&solo_in, &gamma, &beta, 1e-5);
    let solo_gelu = ops::gelu(&solo_in);
    for m in [2usize, 5, 8] {
        let mut data = fill(d, 3.3);
        data.extend(fill(d * (m - 1), 8.8));
        let batch = Tensor::from_vec(data, &[m, d]).unwrap();
        let (ln, _, _) = ops::layer_norm(&batch, &gamma, &beta, 1e-5);
        assert_eq!(rows(&ln, d)[0].to_vec(), solo_ln.data().to_vec());
        let gl = ops::gelu(&batch);
        assert_eq!(rows(&gl, d)[0].to_vec(), solo_gelu.data().to_vec());
    }
}

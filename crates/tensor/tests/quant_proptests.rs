//! Property tests for the int8/f16 quantization layer: round-trip error
//! bounds for `quantize_per_row`/`dequantize`, the int8 GEMM against an
//! f32 reference within the quantization error budget, and bit-for-bit
//! thread-count invariance of `qmatmul_transb` (the same determinism
//! contract `pool_proptests.rs` pins for the f32 kernels).

use ratatouille_util::proptest::prelude::*;
use ratatouille_tensor::{ops, par, Tensor};
use std::sync::{Mutex, MutexGuard};

/// `par::set_num_threads` is process-global and the test harness runs
/// tests concurrently, so every property that sweeps the knob serializes
/// on this lock (recovering it if a failing case poisoned it).
static THREAD_KNOB: Mutex<()> = Mutex::new(());

fn knob() -> MutexGuard<'static, ()> {
    THREAD_KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

const SWEEP: [usize; 4] = [2, 3, 4, 7];

/// Random rank-2 weight matrix with rows spanning very different scales,
/// so per-row scaling actually matters.
fn weight_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..24, 1usize..48).prop_flat_map(|(n, k)| {
        collection::vec(-8.0f32..8.0, n * k..=n * k)
            .prop_map(move |v| Tensor::from_vec(v, &[n, k]).unwrap())
    })
}

/// Random activation/weight pair for `a [m,k] @ wᵀ [k,n]`, with k large
/// enough to cross the AVX2 32-lane boundary in some cases.
fn gemm_operands() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..6, 1usize..80, 1usize..24).prop_flat_map(|(m, k, n)| {
        (
            collection::vec(-4.0f32..4.0, m * k..=m * k),
            collection::vec(-4.0f32..4.0, n * k..=n * k),
        )
            .prop_map(move |(a, w)| {
                (
                    Tensor::from_vec(a, &[m, k]).unwrap(),
                    Tensor::from_vec(w, &[n, k]).unwrap(),
                )
            })
    })
}

proptest! {
    cases = 48;

    /// Per-row symmetric quantization round-trips within half a
    /// quantization step: |x - dequant(quant(x))| <= (max_abs/127) / 2
    /// element-wise, and codes stay inside the [-127, 127] domain the
    /// AVX2 maddubs kernel requires.
    #[test]
    fn quantize_dequantize_roundtrip_bound(w in weight_matrix()) {
        let q = ops::quantize_per_row(&w);
        let back = ops::dequantize(&q);
        let (n, k) = (w.dims()[0], w.dims()[1]);
        prop_assert_eq!(back.dims(), &[n, k]);
        for r in 0..n {
            let row = &w.data()[r * k..(r + 1) * k];
            let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let step = if max_abs == 0.0 { 0.0 } else { max_abs / 127.0 };
            for c in 0..k {
                let code = q.codes().data()[r * k + c];
                prop_assert!((-127..=127).contains(&code), "code {} out of domain", code);
                let err = (row[c] - back.data()[r * k + c]).abs();
                prop_assert!(
                    err <= step * 0.5 + 1e-6,
                    "row {r} col {c}: err {err} > half-step {}",
                    step * 0.5
                );
            }
        }
    }

    /// All-zero rows quantize to scale 0 and dequantize back to exact
    /// zeros (no NaN from a 0/0 scale).
    #[test]
    fn zero_rows_roundtrip_exactly(n in 1usize..8, k in 1usize..32) {
        let w = Tensor::zeros(&[n, k]);
        let q = ops::quantize_per_row(&w);
        let back = ops::dequantize(&q);
        prop_assert!(back.data().iter().all(|&x| x == 0.0));
    }

    /// `qmatmul_transb` stays within the analytic quantization error
    /// budget of a plain f32 GEMM against the original weights. Both
    /// operands are quantized (weights at load, activations per row at
    /// call time), so with â = quant(a), ŵ = quant(w):
    ///
    /// ```text
    /// |âᵀŵ − aᵀw| ≤ Σ|a−â|·|ŵ| + Σ|a|·|w−ŵ|
    ///            ≤ k·(a_step/2)·(127·w_scale) + ‖a‖₁·(w_scale/2)
    /// ```
    #[test]
    fn int8_gemm_tracks_f32_reference((a, w) in gemm_operands()) {
        let q = ops::quantize_per_row(&w);
        let got = ops::qmatmul_transb(&a, &q);
        let exact = ops::matmul_transb(&a, &w);
        prop_assert_eq!(got.dims(), exact.dims());
        let k = a.dims()[1];
        let (m, n) = (got.dims()[0], got.dims()[1]);
        for r in 0..m {
            let row = &a.data()[r * k..(r + 1) * k];
            let a_l1: f32 = row.iter().map(|x| x.abs()).sum();
            let a_max = row.iter().fold(0.0f32, |mx, &x| mx.max(x.abs()));
            let a_half_step = a_max / 127.0 * 0.5;
            for c in 0..n {
                let w_scale = q.scales()[c];
                let budget = k as f32 * a_half_step * (127.0 * w_scale)
                    + a_l1 * w_scale * 0.5
                    + (4.0 * 8.0 * k as f32) * 16.0 * f32::EPSILON
                    + 1e-4;
                let err = (got.data()[r * n + c] - exact.data()[r * n + c]).abs();
                prop_assert!(
                    err <= budget,
                    "[{r},{c}]: quantization error {err} exceeds budget {budget}"
                );
            }
        }
    }

    /// `qmatmul_transb` is bit-identical for thread counts {2, 3, 4, 7}
    /// vs 1 — integer accumulation makes this exact, not approximate,
    /// covering both the m == 1 column-split decode path and the m > 1
    /// row-split path.
    #[test]
    fn qmatmul_bits_invariant_across_thread_counts((a, w) in gemm_operands()) {
        let q = ops::quantize_per_row(&w);
        let _g = knob();
        par::set_num_threads(1);
        let serial = ops::qmatmul_transb(&a, &q);
        for &t in &SWEEP {
            par::set_num_threads(t);
            let parallel = ops::qmatmul_transb(&a, &q);
            prop_assert_eq!(serial.dims(), parallel.dims());
            for (i, (x, y)) in serial.data().iter().zip(parallel.data()).enumerate() {
                prop_assert!(
                    x.to_bits() == y.to_bits(),
                    "qmatmul_transb: bit mismatch at {} with {} threads: {} vs {}",
                    i, t, x, y
                );
            }
        }
        par::set_num_threads(0);
    }

    /// f32 → f16 → f32 round-trip error is bounded by the f16 relative
    /// epsilon (2^-11) for normal values in a safe range.
    #[test]
    fn f16_roundtrip_bound(v in collection::vec(-1000.0f32..1000.0, 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec(v.clone(), &[n]).unwrap();
        let half = ops::to_f16(&t);
        let back = ops::to_f32(&half);
        for (i, (&x, &y)) in v.iter().zip(back.data()).enumerate() {
            let tol = x.abs() * (1.0 / 2048.0) + 1e-6;
            prop_assert!(
                (x - y).abs() <= tol,
                "elem {i}: f16 roundtrip {x} -> {y} exceeds tol {tol}"
            );
        }
    }
}

/// Quantizing twice is idempotent at the code level: codes and scales of
/// `quantize(dequantize(quantize(w)))` equal the first quantization.
#[test]
fn requantization_is_stable() {
    let w = Tensor::from_vec(
        (0..6 * 33).map(|i| ((i * 37 % 101) as f32 - 50.0) * 0.13).collect(),
        &[6, 33],
    )
    .unwrap();
    let q1 = ops::quantize_per_row(&w);
    let q2 = ops::quantize_per_row(&ops::dequantize(&q1));
    assert_eq!(q1.codes().data(), q2.codes().data());
    for (a, b) in q1.scales().iter().zip(q2.scales()) {
        assert!((a - b).abs() <= a.abs() * 1e-6);
    }
}

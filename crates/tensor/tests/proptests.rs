//! Property-based tests on tensor-library invariants.

use ratatouille_util::proptest::prelude::*;
use ratatouille_tensor::serialize::TensorMap;
use ratatouille_tensor::{ops, Tensor, Var};

/// Small tensors with matching shapes.
fn tensor_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1usize..4, 1usize..5).prop_flat_map(|(r, c)| {
        let n = r * c;
        (
            collection::vec(-10.0f32..10.0, n..=n),
            collection::vec(-10.0f32..10.0, n..=n),
        )
            .prop_map(move |(a, b)| {
                (
                    Tensor::from_vec(a, &[r, c]).unwrap(),
                    Tensor::from_vec(b, &[r, c]).unwrap(),
                )
            })
    })
}

proptest! {
    /// Elementwise addition is commutative; subtraction anti-commutes.
    #[test]
    fn add_commutes((a, b) in tensor_pair()) {
        prop_assert!(ops::add(&a, &b).allclose(&ops::add(&b, &a), 1e-6));
        let ab = ops::sub(&a, &b);
        let ba = ops::neg(&ops::sub(&b, &a));
        prop_assert!(ab.allclose(&ba, 1e-6));
    }

    /// Softmax rows are a probability distribution, for any input.
    #[test]
    fn softmax_is_distribution(data in collection::vec(-50.0f32..50.0, 1..40)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]).unwrap();
        let s = ops::softmax_last(&t);
        prop_assert!(!s.has_non_finite());
        let sum: f32 = s.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(s.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes(
        a in collection::vec(-3.0f32..3.0, 6..=6),
        b in collection::vec(-3.0f32..3.0, 8..=8),
        c in collection::vec(-3.0f32..3.0, 8..=8),
    ) {
        let a = Tensor::from_vec(a, &[3, 2]).unwrap();
        let b = Tensor::from_vec(b, &[2, 4]).unwrap();
        let c = Tensor::from_vec(c, &[2, 4]).unwrap();
        let lhs = ops::matmul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&ops::matmul(&a, &b), &ops::matmul(&a, &c));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    /// Transpose identities: (Aᵀ)ᵀ = A and matmul_transb(A, B) = A·Bᵀ.
    #[test]
    fn transpose_involution((a, b) in tensor_pair()) {
        prop_assert_eq!(ops::transpose2d(&ops::transpose2d(&a)), a.clone());
        let viat = ops::matmul(&a, &ops::transpose2d(&b.reshape(&[b.dims()[0], b.dims()[1]])));
        let direct = ops::matmul_transb(&a, &b);
        prop_assert!(viat.allclose(&direct, 1e-5));
    }

    /// Checkpoint serialization round-trips any tensor map exactly.
    #[test]
    fn checkpoint_roundtrip(
        names in collection::vec("[a-z]{1,8}", 0..5),
        seed in 0u64..1000,
    ) {
        let mut map = TensorMap::new();
        for (i, n) in names.iter().enumerate() {
            let len = (seed as usize + i) % 7 + 1;
            let data: Vec<f32> = (0..len).map(|j| (seed as f32) * 0.1 + j as f32).collect();
            map.insert(n.clone(), Tensor::from_vec(data, &[len]).unwrap());
        }
        let back = TensorMap::from_bytes(&map.to_bytes()).unwrap();
        prop_assert_eq!(back.len(), map.len());
        for (name, t) in map.iter() {
            prop_assert_eq!(back.get(name), Some(t));
        }
    }

    /// Autograd sum rule: d(sum(a*b))/da == b elementwise.
    #[test]
    fn autograd_product_rule((a, b) in tensor_pair()) {
        let va = Var::leaf(a.clone());
        let vb = Var::constant(b.clone());
        va.mul(&vb).sum().backward();
        let grad = va.grad().unwrap();
        prop_assert!(grad.allclose(&b, 1e-6));
    }

    /// Gradient accumulation is additive: two backward passes double it.
    #[test]
    fn grad_accumulation_is_linear((a, b) in tensor_pair()) {
        let va = Var::leaf(a);
        let vb = Var::constant(b);
        va.mul(&vb).sum().backward();
        let g1 = va.grad().unwrap();
        va.mul(&vb).sum().backward();
        let g2 = va.grad().unwrap();
        prop_assert!(ops::scale(&g1, 2.0).allclose(&g2, 1e-5));
    }

    /// sum_to_trailing inverts trailing broadcast on the gradient path:
    /// summing a broadcast-of-b's shape back gives rows × b's contribution.
    #[test]
    fn broadcast_grad_shape((a, b) in tensor_pair()) {
        let rows = a.dims()[0];
        let cols = a.dims()[1];
        let bias = ops::narrow(&b, 0, 0, 1).reshape(&[cols]);
        let va = Var::constant(a);
        let vb = Var::leaf(bias);
        va.add_broadcast(&vb).sum().backward();
        let g = vb.grad().unwrap();
        // each bias element receives gradient once per row
        prop_assert!(g.data().iter().all(|&v| (v - rows as f32).abs() < 1e-5));
    }
}
